#include "detect/entropy_filter.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/error.hpp"

namespace trustrate::detect {

namespace {

double entropy_of(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  double h = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

EntropyFilter::EntropyFilter(EntropyFilterConfig config) : config_(config) {
  TRUSTRATE_EXPECTS(config_.levels >= 2, "entropy filter needs >= 2 levels");
  TRUSTRATE_EXPECTS(config_.threshold > 0.0, "entropy threshold must be positive");
  TRUSTRATE_EXPECTS(config_.memory >= config_.warmup,
                    "entropy memory must cover the warmup");
}

int EntropyFilter::level_of(double value) const {
  if (config_.levels_include_zero) {
    const int idx = static_cast<int>(std::lround(value * (config_.levels - 1)));
    return std::clamp(idx, 0, config_.levels - 1);
  }
  const int idx = static_cast<int>(std::lround(value * config_.levels)) - 1;
  return std::clamp(idx, 0, config_.levels - 1);
}

FilterOutcome EntropyFilter::filter(const RatingSeries& series) const {
  FilterOutcome out;
  // Laplace smoothing: every level starts with one pseudo-count so early
  // entropies are well-defined. `window` holds the accepted levels backing
  // the counts so the oldest can be retired once `memory` is reached.
  std::vector<double> counts(static_cast<std::size_t>(config_.levels), 1.0);
  std::deque<int> window;
  std::size_t accepted = 0;
  auto admit = [&](int level) {
    counts[static_cast<std::size_t>(level)] += 1.0;
    window.push_back(level);
    if (window.size() > config_.memory) {
      counts[static_cast<std::size_t>(window.front())] -= 1.0;
      window.pop_front();
    }
  };
  for (std::size_t i = 0; i < series.size(); ++i) {
    const int level = level_of(series[i].value);
    if (accepted < config_.warmup) {
      admit(level);
      out.kept.push_back(i);
      ++accepted;
      continue;
    }
    const double before = entropy_of(counts);
    counts[static_cast<std::size_t>(level)] += 1.0;
    const double after = entropy_of(counts);
    // Only an entropy *increase* marks an unfair rating: a testimony that
    // clashes with the accumulated consensus adds uncertainty, while one
    // that agrees concentrates the distribution (entropy falls).
    counts[static_cast<std::size_t>(level)] -= 1.0;  // probe only
    if (after - before > config_.threshold) {
      out.removed.push_back(i);
    } else {
      admit(level);
      out.kept.push_back(i);
      ++accepted;
    }
  }
  return out;
}

}  // namespace trustrate::detect
