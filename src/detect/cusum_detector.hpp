// CUSUM (cumulative sum) change-point detector (extension beyond the
// paper).
//
// A collaborative campaign shifts the mean of the rating stream; CUSUM is
// the classical sequential test for exactly that. Two one-sided sums track
// upward and downward shifts of the standardized ratings:
//
//     S+_n = max(0, S+_{n-1} + (z_n − k))      z_n = (x_n − μ0) / σ0
//     S-_n = max(0, S-_{n-1} − (z_n + k))
//
// An alarm fires when either sum exceeds `h`. The reference mean μ0 and
// scale σ0 come from a warmup prefix, so the detector is self-calibrating
// per product. Compared with the AR detector it reacts to *mean shift*
// rather than *predictability*, which makes the two complementary:
// CUSUM sees large-bias campaigns the variance signature misses, and is
// blind to zero-net-bias collusion that the AR error still exposes.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace trustrate::detect {

struct CusumConfig {
  double k = 0.5;              ///< slack (in σ units): half the shift to detect
  double h = 8.0;              ///< decision threshold (in σ units)
  std::size_t warmup = 30;     ///< ratings used to estimate μ0, σ0
  double min_sigma = 0.02;     ///< lower bound on the scale estimate

  /// Cap on how far behind an alarm the onset backtracking may reach. A
  /// slightly-biased reference mean keeps the sum fractionally positive
  /// for long stretches, which would otherwise drag the onset arbitrarily
  /// far into honest territory.
  std::size_t max_backtrack = 20;
};

/// Per-rating CUSUM state (exposed for plotting/tests).
struct CusumPoint {
  double upper = 0.0;  ///< S+ after this rating
  double lower = 0.0;  ///< S- after this rating
  bool alarm = false;  ///< either sum above h at this rating
};

struct CusumResult {
  std::vector<CusumPoint> points;     ///< one per input rating
  /// Per rating: part of a detected shift. On alarm the mask backtracks to
  /// the breaching sum's onset (its last zero), so the whole shifted block
  /// is flagged, not just the crossing rating.
  std::vector<bool> in_alarm;
  double mu0 = 0.0;                   ///< estimated reference mean
  double sigma0 = 0.0;                ///< estimated reference scale

  /// Index of the first alarmed rating, or series size when none.
  std::size_t first_alarm() const;
  std::size_t alarm_count() const;
};

class CusumDetector {
 public:
  explicit CusumDetector(CusumConfig config = {});

  /// Runs the two-sided CUSUM over a time-sorted series. Series shorter
  /// than the warmup produce no alarms. The sums reset to zero when an
  /// alarm fires (standard restart behaviour) so separate campaigns raise
  /// separate alarms.
  CusumResult analyze(const RatingSeries& series) const;

  const CusumConfig& config() const { return config_; }

 private:
  CusumConfig config_;
};

}  // namespace trustrate::detect
