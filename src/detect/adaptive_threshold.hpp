// Self-calibrating detection threshold (extension beyond the paper).
//
// The AR detector thresholds an *absolute* residual variance, so the right
// threshold depends on the honest population's rating spread — a number an
// operator rarely knows up front (README: "thresholds are population-
// calibrated"). This tracker learns the honest error level online: it
// maintains exponentially-weighted estimates of the mean and deviation of
// *non-suspicious* window errors and places the threshold a configurable
// fraction below that baseline:
//
//     threshold = max(floor, baseline_mean * ratio)
//
// Only windows the current threshold does NOT flag update the baseline, so
// campaigns cannot drag the baseline down to meet them (the same
// self-consistency trick as the rate detector's trimmed mean). Usage:
//
//     AdaptiveThresholdTracker tracker({});
//     for each evaluated window w:
//       w.suspicious = w.error < tracker.threshold();
//       tracker.observe(w.error);   // ignored internally if below threshold
#pragma once

#include <cstddef>

namespace trustrate::detect {

struct AdaptiveThresholdConfig {
  double ratio = 0.6;        ///< threshold as a fraction of the honest baseline
  double alpha = 0.05;       ///< EWMA weight of a new observation
  double floor = 0.004;      ///< hard lower bound on the threshold
  double initial_mean = 0.03;///< baseline before any observations
  std::size_t warmup = 10;   ///< observations accepted unconditionally

  /// A genuine population change looks like an attack at first: every new
  /// error sits below the stale threshold and is rejected. Campaigns are
  /// transient, population shifts persist — after this many *consecutive*
  /// rejections the tracker enters recalibration and absorbs observations
  /// until one clears the threshold again. Campaigns longer than this many
  /// windows can poison the baseline; size it to several campaign lengths.
  std::size_t recalibrate_after = 50;
};

class AdaptiveThresholdTracker {
 public:
  explicit AdaptiveThresholdTracker(AdaptiveThresholdConfig config = {});

  /// Current detection threshold.
  double threshold() const;

  /// Current baseline estimate of the honest window error.
  double baseline() const { return mean_; }

  /// Feeds one window error. During warmup every observation updates the
  /// baseline; afterwards only errors at or above the current threshold do
  /// (suspicious windows must not poison the baseline). Returns true when
  /// the observation was absorbed into the baseline.
  bool observe(double error);

  std::size_t observations() const { return observations_; }

 private:
  AdaptiveThresholdConfig config_;
  double mean_;
  std::size_t observations_ = 0;
  std::size_t consecutive_rejections_ = 0;
  bool recalibrating_ = false;
};

}  // namespace trustrate::detect
