// Endorsement-based rating quality (Chen & Singh 2001, the paper's ref. [2]
// — baseline).
//
// Every rating endorses every other rating in proportion to their
// agreement: endorse(r_i, r_j) = 1 − |r_i − r_j|. A rating's quality is its
// mean endorsement from all other ratings; ratings whose quality falls more
// than `deviations` standard deviations below the mean quality are
// abnormal. Unfair ratings far from the majority collect weak endorsements
// and sink; moderate-bias collaborative ratings endorse *each other* and
// survive — exactly the failure mode the paper exploits.
#pragma once

#include "detect/filter.hpp"

namespace trustrate::detect {

struct EndorsementFilterConfig {
  double deviations = 2.0;     ///< flag quality < mean − deviations·stddev
  std::size_t min_ratings = 5; ///< below this, keep everything
};

class EndorsementFilter final : public RatingFilter {
 public:
  explicit EndorsementFilter(EndorsementFilterConfig config = {});

  FilterOutcome filter(const RatingSeries& series) const override;
  std::string name() const override { return "endorsement"; }

  /// Quality scores for each rating in `series` (mean pairwise agreement).
  static std::vector<double> qualities(const RatingSeries& series);

 private:
  EndorsementFilterConfig config_;
};

}  // namespace trustrate::detect
