// Arrival-rate anomaly detector (extension beyond the paper).
//
// Collaborative campaigns do not just bias the *values* of ratings — they
// spike the *arrival rate*: a product that normally collects a handful of
// ratings per day suddenly collects dozens. This detector models honest
// arrivals as a Poisson process whose rate is estimated from the
// product's own history, and flags windows whose rating count is
// improbably high under that rate. It formalizes the "volume gate" that
// the burst-attack ablation (EXPERIMENTS.md, Fig. 12 note) shows is
// needed against high-bias burst campaigns, and composes naturally with
// ArSuspicionDetector: rate anomaly says *something* is happening;
// variance collapse says the extra ratings agree with each other.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "signal/window.hpp"

namespace trustrate::detect {

struct RateDetectorConfig {
  double window_days = 3.0;
  double step_days = 1.5;

  /// One-sided significance: a window is anomalous when the probability of
  /// observing at least its count under the estimated Poisson rate is
  /// below this (with the usual normal approximation for large means).
  double p_value = 1e-4;

  /// The rate estimate excludes the highest-rate fraction of windows so a
  /// campaign does not inflate its own baseline (trimmed mean).
  double trim_fraction = 0.25;

  /// Minimum baseline rate (ratings/day) before anything can be judged.
  double min_rate = 0.5;
};

/// Per-window report.
struct RateWindowReport {
  signal::TimeWindow window;
  std::size_t first = 0;  ///< index range [first, last) into the series
  std::size_t last = 0;
  double expected = 0.0;  ///< expected count under the baseline rate
  bool anomalous = false;
};

struct RateAnomalyResult {
  std::vector<RateWindowReport> windows;
  std::vector<bool> in_anomalous_window;  ///< per input rating
  double baseline_rate = 0.0;             ///< ratings/day

  std::size_t anomalous_count() const;
};

class RateAnomalyDetector {
 public:
  explicit RateAnomalyDetector(RateDetectorConfig config = {});

  /// Analyzes a time-sorted series over [t0, t1). Requires t1 > t0.
  RateAnomalyResult analyze(const RatingSeries& series, double t0, double t1) const;

  const RateDetectorConfig& config() const { return config_; }

 private:
  RateDetectorConfig config_;
};

/// Upper-tail probability P(X >= count) for X ~ Poisson(mean): exact sum
/// for small means, normal approximation with continuity correction above.
/// Exposed for tests.
double poisson_upper_tail(double mean, std::size_t count);

}  // namespace trustrate::detect
