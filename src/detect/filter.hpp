// Rating-filter interface (the paper's Feature Extraction I + Rating Filter).
//
// A filter examines the ratings of one object and partitions them into
// kept ("normal") and removed ("abnormal") sets. Implementations:
//   * BetaQuantileFilter  — Whitby et al. [4], the filter the paper adopts
//   * EntropyFilter       — Weng et al. [5] baseline
//   * EndorsementFilter   — Chen & Singh [2] baseline
//   * ClusterFilter       — Dellarocas [3]-inspired baseline
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace trustrate::detect {

/// Partition produced by a filter: indices into the input series.
/// `kept` and `removed` are disjoint, sorted, and together cover the input.
struct FilterOutcome {
  std::vector<std::size_t> kept;
  std::vector<std::size_t> removed;

  /// Convenience: the kept ratings as a series (preserves order).
  RatingSeries kept_series(const RatingSeries& input) const;

  /// Boolean mask over the input: true = removed.
  std::vector<bool> removed_mask(std::size_t input_size) const;
};

/// Abstract rating filter (Core Guidelines I.25: empty abstract interface).
class RatingFilter {
 public:
  virtual ~RatingFilter() = default;

  /// Partitions `series` (the ratings of one object, time-sorted).
  virtual FilterOutcome filter(const RatingSeries& series) const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

/// A filter that keeps everything (control condition in experiments).
class NullFilter final : public RatingFilter {
 public:
  FilterOutcome filter(const RatingSeries& series) const override;
  std::string name() const override { return "none"; }
};

}  // namespace trustrate::detect
