// AR-model suspicious-interval detector — the paper's Procedure 1 and its
// central contribution (§III-A.1).
//
// The rating stream of one object is sliced into overlapping windows. Each
// window's ratings form a signal that is fitted with an AR model; windows
// whose normalized model error e(k) falls below a threshold are marked
// *suspicious* with level L(k), and every rater active in a suspicious
// window accrues suspicion value C(i).
//
// Two deliberate interpretation notes (see DESIGN.md):
//  * The paper writes L(k) = scale·(1 − e(k))/threshold, which is unbounded
//    as e→0 although scale is said to lie in (0, 1]. We use the bounded
//    reading L(k) = scale·(1 − e(k)/threshold) ∈ (0, scale].
//  * Procedure 1's lines 10–14 accumulate C(i) so that consecutive
//    overlapping suspicious windows do not double-count a rater; the
//    printed comparison direction is internally inconsistent, so we
//    implement the max-level reading: within a *run* of suspicious windows
//    a rater contributes the run's maximum level exactly once. A run ends
//    when the rater is absent from an evaluated window (tracked by the
//    evaluated-window ordinal, not a level sentinel); each later run is a
//    genuinely new suspicious interval and credits its full maximum again,
//    so C(i) = sum over the rater's runs of each run's peak level.
//
// Hot path (DESIGN.md §13): for the paper's operating point — covariance
// estimator, no demeaning — window fits run through the canonical kernel of
// signal/ar_incremental.hpp, by default incrementally (50%-overlap windows
// share their lag-product columns). The incremental and from-scratch
// routes produce bitwise-identical results by construction; the testkit
// differential oracle pins it. analyze_into() with a caller-owned scratch
// performs zero steady-state heap allocations.
#pragma once

#include <string>
#include <limits>
#include <vector>

#include "common/types.hpp"
#include "detect/suspicion_map.hpp"
#include "obs/observability.hpp"
#include "signal/ar.hpp"
#include "signal/ar_incremental.hpp"
#include "signal/window.hpp"

namespace trustrate::detect {

/// AR estimator choice for the detector.
enum class ArEstimator { kCovariance, kAutocorrelation, kBurg };

/// Which error statistic e(k) is thresholded.
enum class ErrorNormalization {
  /// Residual variance (innovation power), residual_energy / (N − p).
  /// This is the scale on which the paper's fixed threshold 0.02 lives:
  /// honest ratings give e ≈ rating variance (σ² ≈ 0.04 for σ = 0.2), and
  /// a collaborative block collapses it below the threshold regardless of
  /// the product's quality level. The default.
  kResidualVariance,

  /// Residual energy / signal energy ∈ [0, 1] — the scale-free whiteness
  /// measure, useful when rating scales vary (ablation option).
  kSignalEnergyRatio,
};

struct ArDetectorConfig {
  // --- windowing (paper §IV: width 10 days, step 5, i.e. 50% overlap) ---
  double window_days = 10.0;
  double step_days = 5.0;

  /// When true, windows contain a fixed number of ratings instead of a
  /// fixed time span (Fig. 4 uses 50-rating windows stepping by 25).
  bool count_based = false;
  std::size_t window_count = 50;
  std::size_t step_count = 25;

  // --- model ---
  int order = 4;               ///< AR model order p
  bool demean = false;         ///< see ArOptions::demean
  ArEstimator estimator = ArEstimator::kCovariance;

  /// Slide the covariance cross-product state across overlapping windows
  /// instead of refitting each window from scratch. Only applies to the
  /// canonical path (kCovariance, demean == false); results are bitwise
  /// identical either way — this flag exists for the differential oracle
  /// and the benches, not for behaviour.
  bool incremental = true;

  // --- detection ---
  ErrorNormalization normalization = ErrorNormalization::kResidualVariance;
  double error_threshold = 0.02;  ///< e(k) below this marks the window (paper §IV)
  double scale = 1.0;             ///< level scaling factor in (0, 1]

  /// Windows with fewer ratings than both this and 2*order+1 are skipped
  /// (not enough data for the normal equations).
  std::size_t min_ratings = 0;
};

/// Per-window diagnostics.
struct WindowReport {
  /// Time span. For count-based windows this is derived from the ratings:
  /// the half-open [first rating's time, nextafter(last rating's time)) so
  /// that — like the native time windows — `window.contains(r.time)` holds
  /// exactly for the ratings in [first, last). (It used to report the
  /// end-inclusive [first.time, last.time], which excluded the last rating
  /// and overlapped adjacent windows' ends; detect_test pins the fix.)
  signal::TimeWindow window;
  std::size_t first = 0;          ///< index range [first, last) in the series
  std::size_t last = 0;
  /// e(k). NaN when the window was skipped (`evaluated == false`): a
  /// skipped window has *no* error value, and the old 1.0 sentinel was a
  /// plausible on-scale number that silently polluted averages. Gate on
  /// `evaluated` before consuming.
  double model_error = std::numeric_limits<double>::quiet_NaN();
  bool evaluated = false;         ///< false when skipped for lack of data
  bool suspicious = false;
  double level = 0.0;             ///< L(k), 0 unless suspicious
};

/// Full result of analyzing one object's rating stream.
struct SuspicionResult {
  std::vector<WindowReport> windows;

  /// C(i): accumulated suspicion per rater (only raters with C > 0 appear).
  /// Insertion-ordered flat map; iteration order is first-credit order.
  RaterFlatMap<double> suspicion;

  /// Per input rating: true when the rating lies in >= 1 suspicious window.
  std::vector<bool> in_suspicious_window;

  /// Number of suspicious windows.
  std::size_t suspicious_count() const;
};

/// Per-rater bookkeeping for Procedure 1's run accumulation.
struct SuspicionRun {
  std::size_t window = 0;  ///< evaluated-window ordinal of the last hit
  double level = 0.0;      ///< running maximum level of the current run
};

/// Reusable scratch for analyze_into(). All buffers grow to high-water
/// marks; after the first analysis of a given shape, subsequent analyses
/// allocate nothing (pinned by the counting-allocator test in
/// tests/incremental_ar_test.cpp).
struct ArScratch {
  signal::SlidingCovarianceEstimator estimator;
  signal::CovWorkspace workspace;
  std::vector<signal::TimeWindow> time_windows;
  std::vector<signal::IndexWindow> index_windows;
  std::vector<double> values;
  RaterFlatMap<SuspicionRun> runs;
};

/// The Procedure-1 detector.
class ArSuspicionDetector {
 public:
  explicit ArSuspicionDetector(ArDetectorConfig config = {});

  /// Analyzes a time-sorted rating series covering [t0, t1). For count-based
  /// windowing t0/t1 are ignored. Series with fewer ratings than one window
  /// produce a result with no evaluated windows.
  SuspicionResult analyze(const RatingSeries& series, double t0, double t1) const;

  /// analyze() into caller-owned scratch and result storage. Equivalent
  /// output; zero heap allocations once `scratch` and `result` are warm.
  void analyze_into(const RatingSeries& series, double t0, double t1,
                    ArScratch& scratch, SuspicionResult& result) const;

  const ArDetectorConfig& config() const { return config_; }
  std::string name() const { return "ar-suspicion"; }

  /// Attaches metrics (per-window fit timing histogram, evaluated /
  /// suspicious window counters). Strictly out-of-band: analyze() results
  /// are bit-identical with or without instrumentation. Must not be called
  /// concurrently with analyze(); the cached instruments themselves are
  /// safe for concurrent analyze() calls (relaxed atomics).
  void set_observability(const obs::Observability& o);

 private:
  /// Fits the configured estimator via the legacy allocating path (used for
  /// autocorrelation / Burg / demeaned fits); returns the thresholded error.
  double window_error(std::span<const double> values) const;

  ArDetectorConfig config_;

  /// Instruments resolved once at set_observability (null when disabled).
  obs::Histogram* fit_seconds_ = nullptr;
  obs::Counter* windows_evaluated_ = nullptr;
  obs::Counter* windows_suspicious_ = nullptr;
};

}  // namespace trustrate::detect
