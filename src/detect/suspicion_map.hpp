// Flat, insertion-ordered rater → value map for the detector hot path.
//
// SuspicionResult used to hold a std::unordered_map<RaterId, double>. That
// container re-allocates a node per insert, and — critically for the
// zero-allocation contract of ArSuspicionDetector::analyze — libstdc++'s
// clear() frees every node, so reusing the map across windows still
// allocates in steady state. RaterFlatMap keeps its memory across clear():
// entries live in a vector (insertion order, which the digest path sorts
// anyway) and lookups go through a power-of-two open-addressing index of
// positions. After warm-up, insert/lookup/clear perform zero heap
// allocations as long as the per-epoch rater count stays within the
// high-water capacity.
//
// Deliberately minimal: no erase (the detector never removes a rater), and
// iteration yields std::pair<RaterId, V> in insertion order, which is all
// the digest/report consumers need.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace trustrate::detect {

template <typename V>
class RaterFlatMap {
 public:
  using value_type = std::pair<RaterId, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  /// Value for `key`, default-constructed and inserted when absent.
  V& operator[](RaterId key) {
    const std::size_t pos = find_or_insert(key);
    return entries_[pos].second;
  }

  /// Value for `key`; throws std::out_of_range when absent (the same
  /// contract call sites relied on with std::unordered_map::at).
  const V& at(RaterId key) const {
    const std::size_t pos = find_pos(key);
    if (pos == kNotFound) throw std::out_of_range("RaterFlatMap::at: no such rater");
    return entries_[pos].second;
  }

  bool contains(RaterId key) const { return find_pos(key) != kNotFound; }

  /// Iterator-style lookup: end() when absent.
  const_iterator find(RaterId key) const {
    const std::size_t pos = find_pos(key);
    return pos == kNotFound ? entries_.end() : entries_.begin() + static_cast<std::ptrdiff_t>(pos);
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  /// Forgets all entries but keeps both the entry vector's and the slot
  /// index's capacity — the whole point of this container.
  void clear() {
    entries_.clear();
    std::fill(slots_.begin(), slots_.end(), kEmptySlot);
  }

  /// Pre-sizes for `n` raters (optional; the map grows on demand).
  void reserve(std::size_t n) {
    entries_.reserve(n);
    if (n * 10 >= slots_.size() * 7) rehash(slot_count_for(n));
  }

 private:
  static constexpr std::uint32_t kEmptySlot = 0;  // slot stores position + 1
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  static std::size_t hash(RaterId key) {
    // Fibonacci multiplicative hash; RaterIds are dense small integers.
    return static_cast<std::size_t>(key) * 0x9E3779B9u;
  }

  static std::size_t slot_count_for(std::size_t n) {
    std::size_t count = 16;
    while (count * 7 < n * 10) count *= 2;  // keep load factor under 0.7
    return count;
  }

  std::size_t find_pos(RaterId key) const {
    if (slots_.empty()) return kNotFound;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t s = hash(key) & mask;; s = (s + 1) & mask) {
      const std::uint32_t slot = slots_[s];
      if (slot == kEmptySlot) return kNotFound;
      const std::size_t pos = slot - 1;
      if (entries_[pos].first == key) return pos;
    }
  }

  std::size_t find_or_insert(RaterId key) {
    if (slots_.empty() || (entries_.size() + 1) * 10 >= slots_.size() * 7) {
      rehash(slot_count_for(entries_.size() + 1));
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t s = hash(key) & mask;
    for (;; s = (s + 1) & mask) {
      const std::uint32_t slot = slots_[s];
      if (slot == kEmptySlot) break;
      const std::size_t pos = slot - 1;
      if (entries_[pos].first == key) return pos;
    }
    entries_.emplace_back(key, V{});
    slots_[s] = static_cast<std::uint32_t>(entries_.size());
    return entries_.size() - 1;
  }

  void rehash(std::size_t new_slot_count) {
    if (new_slot_count <= slots_.size()) return;
    slots_.assign(new_slot_count, kEmptySlot);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t pos = 0; pos < entries_.size(); ++pos) {
      std::size_t s = hash(entries_[pos].first) & mask;
      while (slots_[s] != kEmptySlot) s = (s + 1) & mask;
      slots_[s] = static_cast<std::uint32_t>(pos + 1);
    }
  }

  std::vector<value_type> entries_;   ///< insertion order
  std::vector<std::uint32_t> slots_;  ///< open-addressing index, pos + 1
};

}  // namespace trustrate::detect
