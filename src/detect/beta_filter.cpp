#include "detect/beta_filter.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "stats/descriptive.hpp"
#include "stats/special.hpp"

namespace trustrate::detect {

namespace {

/// Quantile band of the majority opinion. The kept ratings are summarized
/// by a Beta distribution fitted by moments — the *predictive* distribution
/// of an individual rating, not the posterior of the mean (which collapses
/// to a point for large samples and would reject everything). When the
/// sample is too over-dispersed for a Beta fit, empirical quantiles serve
/// as the band.
struct Band {
  double lo;
  double hi;
};

Band majority_band(const std::vector<double>& values, double q) {
  const double m = std::clamp(stats::summarize(values).mean, 1e-6, 1.0 - 1e-6);
  const double v = stats::population_variance(values);
  if (v <= 1e-12) {
    // Degenerate: all kept ratings (nearly) identical; nothing is an outlier
    // relative to them.
    return {0.0, 1.0};
  }
  const double common = m * (1.0 - m) / v - 1.0;
  if (common <= 0.0) {
    // Over-dispersed beyond any Beta: fall back to empirical quantiles.
    return {stats::quantile(values, q), stats::quantile(values, 1.0 - q)};
  }
  const double a = m * common;
  const double b = (1.0 - m) * common;
  return {stats::beta_quantile(q, a, b), stats::beta_quantile(1.0 - q, a, b)};
}

}  // namespace

BetaQuantileFilter::BetaQuantileFilter(BetaFilterConfig config) : config_(config) {
  TRUSTRATE_EXPECTS(config_.q > 0.0 && config_.q < 0.5,
                    "beta filter q must be in (0, 0.5)");
  TRUSTRATE_EXPECTS(config_.max_iterations >= 1,
                    "beta filter needs at least one iteration");
}

void BetaQuantileFilter::set_observability(const obs::Observability& o) {
  if (o.metrics == nullptr) {
    filter_seconds_ = nullptr;
    ratings_filtered_ = nullptr;
    return;
  }
  filter_seconds_ = &o.metrics->histogram(
      "trustrate_filter_seconds", obs::default_seconds_buckets(),
      "Per-product beta filter pass wall time (Feature Extraction I)");
  ratings_filtered_ = &o.metrics->counter(
      "trustrate_ratings_filtered_total",
      "Ratings removed by the beta quantile filter");
}

FilterOutcome BetaQuantileFilter::filter(const RatingSeries& series) const {
  const std::uint64_t start =
      filter_seconds_ != nullptr ? obs::monotonic_ns() : 0;
  FilterOutcome out = filter_impl(series);
  if (filter_seconds_ != nullptr) {
    filter_seconds_->observe(
        static_cast<double>(obs::monotonic_ns() - start) * 1e-9);
  }
  if (ratings_filtered_ != nullptr) ratings_filtered_->add(out.removed.size());
  return out;
}

FilterOutcome BetaQuantileFilter::filter_impl(const RatingSeries& series) const {
  FilterOutcome out;
  out.kept.resize(series.size());
  std::iota(out.kept.begin(), out.kept.end(), 0);
  if (series.size() < config_.min_ratings) return out;

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    std::vector<double> values;
    values.reserve(out.kept.size());
    for (std::size_t i : out.kept) values.push_back(series[i].value);
    const Band band = majority_band(values, config_.q);

    std::vector<std::size_t> still_kept;
    bool changed = false;
    for (std::size_t i : out.kept) {
      const double v = series[i].value;
      if (v < band.lo || v > band.hi) {
        out.removed.push_back(i);
        changed = true;
      } else {
        still_kept.push_back(i);
      }
    }
    out.kept = std::move(still_kept);
    if (!changed || out.kept.size() < config_.min_ratings) break;
  }
  std::sort(out.removed.begin(), out.removed.end());
  return out;
}

}  // namespace trustrate::detect
