#include "detect/cluster_filter.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace trustrate::detect {

ClusterFilter::ClusterFilter(ClusterFilterConfig config) : config_(config) {
  TRUSTRATE_EXPECTS(config_.min_separation > 0.0,
                    "cluster filter separation must be positive");
  TRUSTRATE_EXPECTS(config_.max_minority_fraction > 0.0 &&
                        config_.max_minority_fraction < 1.0,
                    "minority fraction must be in (0, 1)");
}

double ClusterFilter::optimal_split(std::vector<double> values) {
  TRUSTRATE_EXPECTS(values.size() >= 2, "optimal_split needs >= 2 values");
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();

  // Prefix sums let each candidate split be scored in O(1).
  std::vector<double> prefix(n + 1, 0.0);
  std::vector<double> prefix_sq(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + values[i];
    prefix_sq[i + 1] = prefix_sq[i] + values[i] * values[i];
  }
  auto wcss = [&](std::size_t lo, std::size_t hi) {  // [lo, hi)
    const double cnt = static_cast<double>(hi - lo);
    const double sum = prefix[hi] - prefix[lo];
    const double sq = prefix_sq[hi] - prefix_sq[lo];
    return sq - sum * sum / cnt;
  };

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_k = 1;
  for (std::size_t k = 1; k < n; ++k) {  // low cluster = first k values
    const double cost = wcss(0, k) + wcss(k, n);
    if (cost < best) {
      best = cost;
      best_k = k;
    }
  }
  return values[best_k - 1];  // inclusive upper edge of the low cluster
}

FilterOutcome ClusterFilter::filter(const RatingSeries& series) const {
  FilterOutcome out;
  if (series.size() < config_.min_ratings) {
    out.kept.resize(series.size());
    std::iota(out.kept.begin(), out.kept.end(), 0);
    return out;
  }

  const double split = optimal_split(values_of(series));
  std::vector<std::size_t> low;
  std::vector<std::size_t> high;
  double low_sum = 0.0;
  double high_sum = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].value <= split) {
      low.push_back(i);
      low_sum += series[i].value;
    } else {
      high.push_back(i);
      high_sum += series[i].value;
    }
  }
  if (low.empty() || high.empty()) {
    out.kept.resize(series.size());
    std::iota(out.kept.begin(), out.kept.end(), 0);
    return out;
  }

  const double low_mean = low_sum / static_cast<double>(low.size());
  const double high_mean = high_sum / static_cast<double>(high.size());
  const double total = static_cast<double>(series.size());
  const bool separated = (high_mean - low_mean) >= config_.min_separation;
  const auto& minority = (low.size() <= high.size()) ? low : high;
  const bool small_enough =
      static_cast<double>(minority.size()) / total <= config_.max_minority_fraction;

  if (separated && small_enough) {
    out.removed = minority;
    out.kept = (low.size() <= high.size()) ? high : low;
    std::sort(out.kept.begin(), out.kept.end());
  } else {
    out.kept.resize(series.size());
    std::iota(out.kept.begin(), out.kept.end(), 0);
  }
  return out;
}

}  // namespace trustrate::detect
