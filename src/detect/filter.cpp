#include "detect/filter.hpp"

#include <numeric>

namespace trustrate::detect {

RatingSeries FilterOutcome::kept_series(const RatingSeries& input) const {
  RatingSeries out;
  out.reserve(kept.size());
  for (std::size_t i : kept) out.push_back(input[i]);
  return out;
}

std::vector<bool> FilterOutcome::removed_mask(std::size_t input_size) const {
  std::vector<bool> mask(input_size, false);
  for (std::size_t i : removed) mask[i] = true;
  return mask;
}

FilterOutcome NullFilter::filter(const RatingSeries& series) const {
  FilterOutcome out;
  out.kept.resize(series.size());
  std::iota(out.kept.begin(), out.kept.end(), 0);
  return out;
}

}  // namespace trustrate::detect
