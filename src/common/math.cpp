#include "common/math.hpp"

#include "common/error.hpp"

namespace trustrate {

double quantize_unit(double x, int levels, bool include_zero) {
  TRUSTRATE_EXPECTS(levels >= 2, "quantize_unit needs at least 2 levels");
  const double clamped = clamp_unit(x);
  if (include_zero) {
    // Grid {k/(L-1)}: snap to the nearest grid point.
    const double step = 1.0 / (levels - 1);
    return std::round(clamped / step) * step;
  }
  // Grid {k/L, k=1..L}: snap, then keep away from 0.
  const double step = 1.0 / levels;
  double snapped = std::round(clamped / step) * step;
  if (snapped < step) snapped = step;
  if (snapped > 1.0) snapped = 1.0;
  return snapped;
}

double compensated_sum(std::span<const double> xs) {
  // Neumaier's variant: unlike plain Kahan it also compensates when the
  // incoming term is larger than the running sum.
  double sum = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double t = sum + x;
    if (std::fabs(sum) >= std::fabs(x)) {
      c += (sum - t) + x;
    } else {
      c += (x - t) + sum;
    }
    sum = t;
  }
  return sum + c;
}

double mean_of(std::span<const double> xs) {
  TRUSTRATE_EXPECTS(!xs.empty(), "mean_of requires a non-empty span");
  return compensated_sum(xs) / static_cast<double>(xs.size());
}

double dot(std::span<const double> a, std::span<const double> b) {
  TRUSTRATE_EXPECTS(a.size() == b.size(), "dot requires equal-length spans");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double energy(std::span<const double> xs) {
  double sum = 0.0;
  for (double x : xs) sum += x * x;
  return sum;
}

std::vector<double> linspace(double lo, double hi, int n) {
  TRUSTRATE_EXPECTS(n >= 2, "linspace needs n >= 2");
  std::vector<double> out(static_cast<std::size_t>(n));
  const double step = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = lo + step * i;
  out.back() = hi;
  return out;
}

}  // namespace trustrate
