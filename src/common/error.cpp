#include "common/error.hpp"

namespace trustrate::detail {

void fail_precondition(const char* expr, const char* file, int line,
                       const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition `" + expr + "` failed: " + msg);
}

}  // namespace trustrate::detail
