// Minimal CSV helpers for trace I/O and bench output.
//
// The format is deliberately simple: comma-separated fields, no quoting, no
// embedded commas. That is all the rating traces need.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace trustrate {

/// Splits one CSV line into fields. Empty line -> empty vector.
std::vector<std::string> split_csv_line(const std::string& line);

/// Joins fields with commas.
std::string join_csv(const std::vector<std::string>& fields);

/// Parses a double field; throws DataError with context on failure.
double parse_double_field(const std::string& field, const std::string& context);

/// Parses a non-negative integer field; throws DataError on failure.
long long parse_int_field(const std::string& field, const std::string& context);

/// Parses a finite double field; throws DataError (mentioning the context)
/// on non-numeric input and on NaN/infinity, which plain parse_double_field
/// accepts.
double parse_finite_field(const std::string& field, const std::string& context);

/// One CSV row together with its 1-based line number in the source stream,
/// so loader errors can point at the offending file line (blank lines are
/// skipped but still counted).
struct CsvRow {
  std::size_t line = 0;
  std::vector<std::string> fields;
};

/// Reads all non-empty lines of a stream as CSV rows.
std::vector<std::vector<std::string>> read_csv(std::istream& in);

/// Reads all non-empty lines of a stream as CSV rows with line numbers.
std::vector<CsvRow> read_csv_rows(std::istream& in);

}  // namespace trustrate
