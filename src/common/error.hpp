// Error handling for trustrate.
//
// Policy (see DESIGN.md §6): violated preconditions throw; expected numeric
// degeneracies are reported in-band by the functions that can hit them.
// The streaming front-end goes one step further: bad *stream data* (late,
// duplicated, malformed ratings) is classified and quarantined in-band by
// core/ingest.hpp rather than thrown — a hostile stream must not take the
// service down.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>

namespace trustrate {

/// Base class for all library-thrown errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when external data (a trace file, a CSV row) is malformed.
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

/// Thrown when a streaming checkpoint cannot be restored (truncated file,
/// unknown version, corrupted section). A DataError so generic persistence
/// handlers catch it too.
class CheckpointError : public DataError {
 public:
  explicit CheckpointError(const std::string& what) : DataError(what) {}
};

/// Thrown when the write-ahead log is corrupt in a way recovery must not
/// paper over: a bad frame *followed by valid data* (mid-log corruption,
/// not a torn tail), a segment sequence gap, or a replay that disagrees
/// with the recorded outcome. A torn tail — a partial final write with
/// nothing after it — is NOT an error; recovery truncates it.
class WalError : public DataError {
 public:
  explicit WalError(const std::string& what) : DataError(what) {}
};

/// Thrown when the recovery ladder runs out of options: every checkpoint is
/// corrupt (or none exists) and the WAL does not reach back to the start of
/// the stream, so some acknowledged state is unrecoverable.
class RecoveryError : public DataError {
 public:
  explicit RecoveryError(const std::string& what) : DataError(what) {}
};

/// Thrown when an environmental I/O fault (ENOSPC, EIO, a failed fsync or
/// rename) persists past the IoPolicy retry budget. Carries the failed
/// operation, the path, and the errno so degradation-ladder logs are
/// actionable; the durable front-end catches it and degrades rather than
/// letting it kill the pipeline.
class IoError : public DataError {
 public:
  IoError(std::string op, std::string path, int error_code,
          const std::string& what)
      : DataError(what),
        op_(std::move(op)),
        path_(std::move(path)),
        error_code_(error_code) {}

  /// The failed operation ("write", "fsync", "rename", "read", "open").
  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  /// The errno that persisted after retries (0 when not errno-backed).
  int error_code() const { return error_code_; }

 private:
  std::string op_;
  std::string path_;
  int error_code_;
};

/// How a supervised shard pipeline failed (DESIGN.md §15).
enum class ShardFailureKind {
  kPoisoned,  ///< a worker threw; its exception is stashed and rethrowable
  kStalled,   ///< the watchdog saw a non-empty inbox with no progress
  kWedged,    ///< a bounded quiesce/enqueue wait ran out its tick deadline
};

constexpr const char* to_string(ShardFailureKind kind) {
  switch (kind) {
    case ShardFailureKind::kPoisoned: return "poisoned";
    case ShardFailureKind::kStalled:  return "stalled";
    case ShardFailureKind::kWedged:   return "wedged";
  }
  return "unknown";
}

/// Thrown by every public entry point of a sharded pipeline once
/// supervision has latched a failure: a shard worker (or the merge thread)
/// threw, stalled past the watchdog budget, or wedged a bounded wait. The
/// pipeline fail-stops — queues are closed, threads unwound — instead of
/// hanging or calling std::terminate; a durable front-end catches this and
/// heals by rebuilding from checkpoint + WAL. `shard()` equal to the
/// shard count designates the merge thread.
class ShardFailure : public Error {
 public:
  ShardFailure(ShardFailureKind kind, std::size_t shard,
               std::string diagnostic, const std::string& what)
      : Error(what), kind_(kind), shard_(shard),
        diagnostic_(std::move(diagnostic)) {}

  ShardFailureKind kind() const { return kind_; }
  /// Index of the failed shard (== shard count for the merge thread).
  std::size_t shard() const { return shard_; }
  /// Progress counters at classification time: inbox depth, events pushed
  /// vs processed, heartbeat age — the operator-facing wedge evidence.
  const std::string& diagnostic() const { return diagnostic_; }

 private:
  ShardFailureKind kind_;
  std::size_t shard_;
  std::string diagnostic_;
};

namespace detail {
[[noreturn]] void fail_precondition(const char* expr, const char* file, int line,
                                    const std::string& msg);
}  // namespace detail

}  // namespace trustrate

/// Precondition check: throws trustrate::PreconditionError when `expr` is
/// false. Always on (the checked conditions are cheap interface contracts,
/// not inner-loop asserts).
#define TRUSTRATE_EXPECTS(expr, msg)                                          \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::trustrate::detail::fail_precondition(#expr, __FILE__, __LINE__, msg); \
    }                                                                         \
  } while (false)
