#include "common/types.hpp"

#include <algorithm>

namespace trustrate {

bool is_time_sorted(const RatingSeries& series) {
  return std::is_sorted(series.begin(), series.end(),
                        [](const Rating& a, const Rating& b) { return a.time < b.time; });
}

void sort_by_time(RatingSeries& series) {
  std::sort(series.begin(), series.end(), [](const Rating& a, const Rating& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.rater < b.rater;
  });
}

std::vector<double> values_of(const RatingSeries& series) {
  std::vector<double> out;
  out.reserve(series.size());
  for (const Rating& r : series) out.push_back(r.value);
  return out;
}

std::size_t count_unfair(const RatingSeries& series) {
  return static_cast<std::size_t>(
      std::count_if(series.begin(), series.end(),
                    [](const Rating& r) { return is_unfair(r.label); }));
}

}  // namespace trustrate
