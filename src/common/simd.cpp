#include "common/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define TRUSTRATE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define TRUSTRATE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace trustrate::simd {

namespace {

// ---------------------------------------------------------------- scalar
//
// The canonical shape, spelled out. Products live in named temporaries so
// no backend (present or future compiler flag) can contract them into FMAs
// and break the bitwise contract with the vector paths.

double sum_impl_scalar(const double* x, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) lane[i & 3] += x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double dot_impl_scalar(const double* a, const double* b, std::size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const double p = a[i] * b[i];
    lane[i & 3] += p;
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

void multiply_impl_scalar(double* dst, const double* a, const double* b,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
}

void sum_rows_impl_scalar(const double* const* rows, std::size_t row_count,
                          std::size_t n, double* out) {
  // The reference result is *defined* as one canonical sum per row; the
  // vector backends may fuse rows into shared passes but must land on
  // exactly these values.
  for (std::size_t r = 0; r < row_count; ++r) out[r] = sum_impl_scalar(rows[r], n);
}

void multiply_lagged_impl_scalar(double* const* dst, const double* x,
                                 std::size_t lag_count, std::size_t n) {
  for (std::size_t d = 0; d < lag_count; ++d) {
    for (std::size_t i = 0; i < n; ++i) dst[d][i] = x[i] * x[i - d];
  }
}

// ----------------------------------------------------------------- AVX2
//
// Compiled with a per-function target attribute so the translation unit
// itself needs no -mavx2; the dispatcher only selects these after a cpuid
// check. Unaligned loads keep the result independent of buffer alignment
// (lane assignment is by element index, never by address).

#if TRUSTRATE_SIMD_X86
__attribute__((target("avx2"))) double sum_impl_avx2(const double* x,
                                                     std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t m = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < m; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  for (; i < n; ++i) lane[i & 3] += x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2"))) double dot_impl_avx2(const double* a,
                                                     const double* b,
                                                     std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t m = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < m; i += 4) {
    // Explicit mul + add (not _mm256_fmadd_pd): each product rounds before
    // the accumulate, exactly like the scalar reference.
    const __m256d p = _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, p);
  }
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  for (; i < n; ++i) {
    const double p = a[i] * b[i];
    lane[i & 3] += p;
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

__attribute__((target("avx2"))) void multiply_impl_avx2(double* dst,
                                                        const double* a,
                                                        const double* b,
                                                        std::size_t n) {
  const std::size_t m = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < m; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}
__attribute__((target("avx2"))) void sum_rows_impl_avx2(
    const double* const* rows, std::size_t row_count, std::size_t n,
    double* out) {
  // Fuse four rows per pass: one ymm accumulator per row, all rows loaded
  // per index block, so the index loop runs once for the whole quad. Each
  // accumulator sees the same operands in the same order as a standalone
  // sum() over its row — per-row results are bitwise unchanged by the
  // fusion.
  const std::size_t m = n & ~std::size_t{3};
  std::size_t r = 0;
  for (; r + 4 <= row_count; r += 4) {
    const double* r0 = rows[r];
    const double* r1 = rows[r + 1];
    const double* r2 = rows[r + 2];
    const double* r3 = rows[r + 3];
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i < m; i += 4) {
      a0 = _mm256_add_pd(a0, _mm256_loadu_pd(r0 + i));
      a1 = _mm256_add_pd(a1, _mm256_loadu_pd(r1 + i));
      a2 = _mm256_add_pd(a2, _mm256_loadu_pd(r2 + i));
      a3 = _mm256_add_pd(a3, _mm256_loadu_pd(r3 + i));
    }
    double lane[4][4];
    _mm256_storeu_pd(lane[0], a0);
    _mm256_storeu_pd(lane[1], a1);
    _mm256_storeu_pd(lane[2], a2);
    _mm256_storeu_pd(lane[3], a3);
    for (; i < n; ++i) {
      lane[0][i & 3] += r0[i];
      lane[1][i & 3] += r1[i];
      lane[2][i & 3] += r2[i];
      lane[3][i & 3] += r3[i];
    }
    for (std::size_t k = 0; k < 4; ++k) {
      out[r + k] = (lane[k][0] + lane[k][1]) + (lane[k][2] + lane[k][3]);
    }
  }
  for (; r < row_count; ++r) out[r] = sum_impl_avx2(rows[r], n);
}

__attribute__((target("avx2"))) void multiply_lagged_impl_avx2(
    double* const* dst, const double* x, std::size_t lag_count,
    std::size_t n) {
  const std::size_t m = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < m; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    for (std::size_t d = 0; d < lag_count; ++d) {
      _mm256_storeu_pd(dst[d] + i,
                       _mm256_mul_pd(v, _mm256_loadu_pd(x + i - d)));
    }
  }
  for (; i < n; ++i) {
    for (std::size_t d = 0; d < lag_count; ++d) dst[d][i] = x[i] * x[i - d];
  }
}

#endif  // TRUSTRATE_SIMD_X86

// ----------------------------------------------------------------- NEON
//
// Two 2-lane registers model the four canonical lanes (0,1) and (2,3).

#if TRUSTRATE_SIMD_NEON
double sum_impl_neon(const double* x, std::size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const std::size_t m = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < m; i += 4) {
    acc01 = vaddq_f64(acc01, vld1q_f64(x + i));
    acc23 = vaddq_f64(acc23, vld1q_f64(x + i + 2));
  }
  double lane[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                    vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  for (; i < n; ++i) lane[i & 3] += x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double dot_impl_neon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  const std::size_t m = n & ~std::size_t{3};
  std::size_t i = 0;
  for (; i < m; i += 4) {
    // vmulq + vaddq, never vfmaq: the product must round on its own.
    const float64x2_t p01 = vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t p23 = vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc01 = vaddq_f64(acc01, p01);
    acc23 = vaddq_f64(acc23, p23);
  }
  double lane[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                    vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  for (; i < n; ++i) {
    const double p = a[i] * b[i];
    lane[i & 3] += p;
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

void multiply_impl_neon(double* dst, const double* a, const double* b,
                        std::size_t n) {
  const std::size_t m = n & ~std::size_t{1};
  std::size_t i = 0;
  for (; i < m; i += 2) {
    vst1q_f64(dst + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}
void sum_rows_impl_neon(const double* const* rows, std::size_t row_count,
                        std::size_t n, double* out) {
  // Fuse two rows per pass (each row already needs two 2-lane registers
  // for the canonical four lanes).
  const std::size_t m = n & ~std::size_t{3};
  std::size_t r = 0;
  for (; r + 2 <= row_count; r += 2) {
    const double* r0 = rows[r];
    const double* r1 = rows[r + 1];
    float64x2_t a01 = vdupq_n_f64(0.0);
    float64x2_t a23 = vdupq_n_f64(0.0);
    float64x2_t b01 = vdupq_n_f64(0.0);
    float64x2_t b23 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    for (; i < m; i += 4) {
      a01 = vaddq_f64(a01, vld1q_f64(r0 + i));
      a23 = vaddq_f64(a23, vld1q_f64(r0 + i + 2));
      b01 = vaddq_f64(b01, vld1q_f64(r1 + i));
      b23 = vaddq_f64(b23, vld1q_f64(r1 + i + 2));
    }
    double lane[2][4] = {{vgetq_lane_f64(a01, 0), vgetq_lane_f64(a01, 1),
                          vgetq_lane_f64(a23, 0), vgetq_lane_f64(a23, 1)},
                         {vgetq_lane_f64(b01, 0), vgetq_lane_f64(b01, 1),
                          vgetq_lane_f64(b23, 0), vgetq_lane_f64(b23, 1)}};
    for (; i < n; ++i) {
      lane[0][i & 3] += r0[i];
      lane[1][i & 3] += r1[i];
    }
    out[r] = (lane[0][0] + lane[0][1]) + (lane[0][2] + lane[0][3]);
    out[r + 1] = (lane[1][0] + lane[1][1]) + (lane[1][2] + lane[1][3]);
  }
  for (; r < row_count; ++r) out[r] = sum_impl_neon(rows[r], n);
}

void multiply_lagged_impl_neon(double* const* dst, const double* x,
                               std::size_t lag_count, std::size_t n) {
  const std::size_t m = n & ~std::size_t{1};
  std::size_t i = 0;
  for (; i < m; i += 2) {
    const float64x2_t v = vld1q_f64(x + i);
    for (std::size_t d = 0; d < lag_count; ++d) {
      vst1q_f64(dst[d] + i, vmulq_f64(v, vld1q_f64(x + i - d)));
    }
  }
  for (; i < n; ++i) {
    for (std::size_t d = 0; d < lag_count; ++d) dst[d][i] = x[i] * x[i - d];
  }
}

#endif  // TRUSTRATE_SIMD_NEON

// ------------------------------------------------------------- dispatch

using SumFn = double (*)(const double*, std::size_t);
using DotFn = double (*)(const double*, const double*, std::size_t);
using MulFn = void (*)(double*, const double*, const double*, std::size_t);
using SumRowsFn = void (*)(const double* const*, std::size_t, std::size_t,
                           double*);
using MulLagFn = void (*)(double* const*, const double*, std::size_t,
                          std::size_t);

struct Backend {
  SumFn sum;
  DotFn dot;
  MulFn multiply;
  SumRowsFn sum_rows;
  MulLagFn multiply_lagged;
  const char* name;
};

Backend resolve_backend() {
#if TRUSTRATE_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    return {sum_impl_avx2, dot_impl_avx2, multiply_impl_avx2,
            sum_rows_impl_avx2, multiply_lagged_impl_avx2, "avx2"};
  }
#elif TRUSTRATE_SIMD_NEON
  return {sum_impl_neon, dot_impl_neon, multiply_impl_neon,
          sum_rows_impl_neon, multiply_lagged_impl_neon, "neon"};
#endif
  return {sum_impl_scalar, dot_impl_scalar, multiply_impl_scalar,
          sum_rows_impl_scalar, multiply_lagged_impl_scalar, "scalar"};
}

// Namespace-scope constant rather than a function-local static: dynamic
// initialization runs once at load time (cpuid needs no other globals), and
// every call site then reads the table with no init-guard check — these
// functions sit on per-window hot paths where even an acquire-load guard
// shows up.
const Backend g_backend = resolve_backend();

inline const Backend& backend_instance() { return g_backend; }

}  // namespace

double sum(const double* x, std::size_t n) {
  return backend_instance().sum(x, n);
}

double dot(const double* a, const double* b, std::size_t n) {
  return backend_instance().dot(a, b, n);
}

double energy(const double* x, std::size_t n) {
  return backend_instance().dot(x, x, n);
}

void multiply(double* dst, const double* a, const double* b, std::size_t n) {
  backend_instance().multiply(dst, a, b, n);
}

void sum_rows(const double* const* rows, std::size_t row_count, std::size_t n,
              double* out) {
  backend_instance().sum_rows(rows, row_count, n, out);
}

void multiply_lagged(double* const* dst, const double* x,
                     std::size_t lag_count, std::size_t n) {
  backend_instance().multiply_lagged(dst, x, lag_count, n);
}

double sum_scalar(const double* x, std::size_t n) {
  return sum_impl_scalar(x, n);
}

double dot_scalar(const double* a, const double* b, std::size_t n) {
  return dot_impl_scalar(a, b, n);
}

void multiply_scalar(double* dst, const double* a, const double* b,
                     std::size_t n) {
  multiply_impl_scalar(dst, a, b, n);
}

void sum_rows_scalar(const double* const* rows, std::size_t row_count,
                     std::size_t n, double* out) {
  sum_rows_impl_scalar(rows, row_count, n, out);
}

void multiply_lagged_scalar(double* const* dst, const double* x,
                            std::size_t lag_count, std::size_t n) {
  multiply_lagged_impl_scalar(dst, x, lag_count, n);
}

const char* backend() { return backend_instance().name; }

}  // namespace trustrate::simd
