#include "common/rng.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trustrate {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  TRUSTRATE_EXPECTS(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TRUSTRATE_EXPECTS(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::gaussian(double mean, double sigma) {
  TRUSTRATE_EXPECTS(sigma >= 0.0, "gaussian sigma must be non-negative");
  if (sigma == 0.0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

bool Rng::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(clamped)(engine_);
}

std::uint32_t Rng::poisson(double mean) {
  TRUSTRATE_EXPECTS(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  return static_cast<std::uint32_t>(
      std::poisson_distribution<std::uint32_t>(mean)(engine_));
}

double Rng::exponential(double rate) {
  TRUSTRATE_EXPECTS(rate > 0.0, "exponential rate must be positive");
  return std::exponential_distribution<double>(rate)(engine_);
}

Rng Rng::split() {
  // Mix two engine outputs through splitmix64 so child streams do not
  // overlap the parent's future output in any obvious way.
  auto mix = [](std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(mix(a) ^ (mix(b) << 1));
}

}  // namespace trustrate
