// Portable SIMD kernels for the AR hot path.
//
// Every reduction here follows one *canonical* evaluation shape — four
// independent accumulator lanes striding the input by 4, a scalar tail
// folded into lane (i & 3), and the fixed combine (l0 + l1) + (l2 + l3).
// The AVX2 and NEON backends implement exactly that shape with vector
// registers, so the dispatched result is bitwise identical to the scalar
// reference on every architecture: vector lane j sees the same operands in
// the same order as scalar accumulator j. This is what lets the
// incremental-vs-from-scratch AR oracle (testkit) compare digests with
// hexfloat equality while the hot loops still run at vector speed.
//
// No FMA is ever emitted: multiply and add round separately in all
// backends (the intrinsic paths use explicit mul/add, the scalar paths
// keep the product in a named temporary so the compiler cannot contract).
//
// Dispatch is resolved once per process (AVX2 via cpuid on x86-64, NEON
// unconditionally on aarch64, scalar otherwise); `backend()` reports the
// choice and the `*_scalar` entry points stay callable so tests can assert
// the bitwise contract on the machine they run on.
#pragma once

#include <cstddef>

namespace trustrate::simd {

/// Canonical 4-lane blocked sum of x[0..n).
double sum(const double* x, std::size_t n);

/// Canonical 4-lane blocked dot product of a[0..n) and b[0..n).
double dot(const double* a, const double* b, std::size_t n);

/// Canonical 4-lane blocked sum of squares of x[0..n). Identical to
/// dot(x, x, n), provided for readability at call sites.
double energy(const double* x, std::size_t n);

/// Elementwise dst[i] = a[i] * b[i] for i in [0, n). Each element is one
/// correctly rounded multiply, so the result is backend-independent by
/// construction.
void multiply(double* dst, const double* a, const double* b, std::size_t n);

/// out[r] = sum(rows[r], n) for r in [0, row_count) — bitwise identical to
/// calling sum() per row, but the vector backends fuse several rows into a
/// single pass (one accumulator register per row) so short same-length
/// reductions — the p+1 diagonal sums of a covariance fit — pay the loop
/// and dispatch overhead once instead of row_count times.
void sum_rows(const double* const* rows, std::size_t row_count, std::size_t n,
              double* out);

/// dst[d][i] = x[i] * x[i − d] for d in [0, lag_count), i in [0, n) — the
/// lag-product columns of an AR covariance fit, filled in one pass (each
/// x[i] is loaded once and multiplied against all lags). The caller must
/// guarantee x[−(lag_count−1)] is addressable. Like multiply(), every
/// element is a single correctly rounded multiply, so the result is
/// backend-independent by construction.
void multiply_lagged(double* const* dst, const double* x,
                     std::size_t lag_count, std::size_t n);

/// Scalar reference implementations of the same canonical shape. The
/// dispatched functions above must agree with these bitwise on any input —
/// the SIMD conformance test (tests/incremental_ar_test.cpp) pins it.
double sum_scalar(const double* x, std::size_t n);
double dot_scalar(const double* a, const double* b, std::size_t n);
void multiply_scalar(double* dst, const double* a, const double* b,
                     std::size_t n);
void sum_rows_scalar(const double* const* rows, std::size_t row_count,
                     std::size_t n, double* out);
void multiply_lagged_scalar(double* const* dst, const double* x,
                            std::size_t lag_count, std::size_t n);

/// Name of the backend the dispatcher resolved: "avx2", "neon" or "scalar".
const char* backend();

}  // namespace trustrate::simd
