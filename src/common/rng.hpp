// Deterministic random number generation.
//
// Every stochastic component in trustrate takes an Rng& parameter; there is
// no global generator (Core Guidelines I.2). Monte-Carlo experiments derive
// independent per-run streams with Rng::split().
#pragma once

#include <cstdint>
#include <random>

namespace trustrate {

/// Seedable random source with the distributions the simulators need.
/// Thin facade over std::mt19937_64; copyable so callers can snapshot state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform double on [0, 1).
  double uniform();

  /// Uniform double on [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal with given mean and standard deviation (sigma >= 0).
  double gaussian(double mean, double sigma);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (mean >= 0).
  std::uint32_t poisson(double mean);

  /// Exponential inter-arrival time with the given rate (rate > 0).
  double exponential(double rate);

  /// Derives an independent child generator; deterministic given this
  /// generator's current state. Use one child per Monte-Carlo run.
  Rng split();

  /// Direct access for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace trustrate
