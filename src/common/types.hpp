// Core value types shared by every trustrate module.
//
// Time is measured in fractional *days* (the unit used throughout the
// paper). Rating values live on the unit interval [0, 1]; discrete rating
// scales (5-star, 11-level, ...) are mapped onto [0, 1] by the producers.
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

namespace trustrate {

/// Identifier of a rater (user submitting ratings).
using RaterId = std::uint32_t;

/// Identifier of a rated object (product, movie, service ...).
using ProductId = std::uint32_t;

/// Sentinel for "no rater" (e.g. synthetic or anonymous entries).
inline constexpr RaterId kNoRater = static_cast<RaterId>(-1);

/// Ground-truth provenance of a rating, used by simulators and metrics.
/// Production code paths never look at this — it exists so experiments can
/// score detectors against the truth.
enum class RatingLabel : std::uint8_t {
  kHonest = 0,      ///< fair rating from a reliable rater
  kCareless,        ///< fair but noisy rating (careless rater)
  kCollaborative1,  ///< type-1 collaborative: honest rating shifted by bias
  kCollaborative2,  ///< type-2 collaborative: recruited rater, biased stream
};

/// True for the two collaborative (unfair) label kinds.
constexpr bool is_unfair(RatingLabel label) {
  return label == RatingLabel::kCollaborative1 ||
         label == RatingLabel::kCollaborative2;
}

/// One rating event: rater `rater` rated `product` with `value` at `time`.
struct Rating {
  double time = 0.0;              ///< days since trace start
  double value = 0.0;             ///< rating on [0, 1]
  RaterId rater = kNoRater;       ///< who rated
  ProductId product = 0;          ///< what was rated
  RatingLabel label = RatingLabel::kHonest;  ///< ground truth (simulation only)

  friend auto operator<=>(const Rating&, const Rating&) = default;
};

/// A time-ordered sequence of ratings for one object (or one mixed stream).
/// Invariant maintained by producers: non-decreasing `time`.
using RatingSeries = std::vector<Rating>;

/// Returns true when `series` is sorted by time (the RatingSeries invariant).
bool is_time_sorted(const RatingSeries& series);

/// Sorts a series by (time, rater) to establish the RatingSeries invariant.
void sort_by_time(RatingSeries& series);

/// Extracts the rating values of a series, in order.
std::vector<double> values_of(const RatingSeries& series);

/// Number of ratings in `series` with an unfair ground-truth label.
std::size_t count_unfair(const RatingSeries& series);

}  // namespace trustrate
