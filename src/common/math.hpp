// Small numeric helpers shared across modules.
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace trustrate {

/// Clamps x to the unit interval.
constexpr double clamp_unit(double x) {
  if (x < 0.0) return 0.0;
  if (x > 1.0) return 1.0;
  return x;
}

/// Quantizes x in [0,1] onto `levels` evenly spaced values.
///
/// With include_zero = true the grid is {0, 1/(L-1), ..., 1} — the paper's
/// 11-level scale 0, 0.1, ..., 1.0. With include_zero = false it is
/// {1/L, 2/L, ..., 1} — the paper's 10-level scale 0.1, ..., 1.0.
double quantize_unit(double x, int levels, bool include_zero);

/// True when |a - b| <= tol.
constexpr bool approx_equal(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Sum of a span (Kahan compensated; these series are short but the
/// compensation is free at this scale).
double compensated_sum(std::span<const double> xs);

/// Arithmetic mean; requires a non-empty span.
double mean_of(std::span<const double> xs);

/// Dot product of equal-length spans.
double dot(std::span<const double> a, std::span<const double> b);

/// Energy (sum of squares) of a span.
double energy(std::span<const double> xs);

/// Linearly spaced grid of n points from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, int n);

}  // namespace trustrate
