#include "common/csv.hpp"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace trustrate {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  if (line.empty()) return fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string join_csv(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += fields[i];
  }
  return out;
}

double parse_double_field(const std::string& field, const std::string& context) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    throw DataError("malformed numeric field '" + field + "' in " + context);
  }
  return value;
}

long long parse_int_field(const std::string& field, const std::string& context) {
  char* end = nullptr;
  const long long value = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0' || value < 0) {
    throw DataError("malformed integer field '" + field + "' in " + context);
  }
  return value;
}

double parse_finite_field(const std::string& field, const std::string& context) {
  const double value = parse_double_field(field, context);
  if (!std::isfinite(value)) {
    throw DataError("non-finite numeric field '" + field + "' in " + context);
  }
  return value;
}

std::vector<std::vector<std::string>> read_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  for (auto& row : read_csv_rows(in)) rows.push_back(std::move(row.fields));
  return rows;
}

std::vector<CsvRow> read_csv_rows(std::istream& in) {
  std::vector<CsvRow> rows;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back({line_number, split_csv_line(line)});
  }
  return rows;
}

}  // namespace trustrate
