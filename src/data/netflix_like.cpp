#include "data/netflix_like.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace trustrate::data {

double netflix_arrival_rate(const NetflixLikeConfig& config, double t) {
  const double x = t / config.peak_day;
  const double spike = config.peak_rate * x * std::exp(1.0 - x);
  const double weekly =
      1.0 + config.weekly_amplitude * std::sin(2.0 * M_PI * t / 7.0);
  return std::max((config.base_rate + spike) * weekly, 1e-6);
}

RatingTrace generate_netflix_like(const NetflixLikeConfig& config, Rng& rng) {
  TRUSTRATE_EXPECTS(config.days > 0.0, "trace length must be positive");
  TRUSTRATE_EXPECTS(config.stars >= 2, "need at least two star levels");
  TRUSTRATE_EXPECTS(config.weekly_amplitude >= 0.0 && config.weekly_amplitude < 1.0,
                    "weekly amplitude must be in [0, 1)");
  TRUSTRATE_EXPECTS(config.rater_pool >= 1, "need a rater pool");

  RatingTrace trace;
  trace.name = "netflix-like";
  trace.levels = config.stars;
  trace.levels_include_zero = false;

  // Thinning algorithm for the inhomogeneous Poisson arrivals: simulate at
  // the maximum rate, accept with probability rate(t)/max_rate.
  double max_rate = 0.0;
  for (double t = 0.0; t < config.days; t += 1.0) {
    max_rate = std::max(max_rate, netflix_arrival_rate(config, t));
  }
  max_rate *= 1.05;  // headroom for intra-day peaks

  for (double t = rng.exponential(max_rate); t < config.days;
       t += rng.exponential(max_rate)) {
    if (!rng.bernoulli(netflix_arrival_rate(config, t) / max_rate)) continue;
    const double frac = t / config.days;
    const double quality =
        config.quality_start + frac * (config.quality_end - config.quality_start);
    const double raw = rng.gaussian(quality, config.sigma);
    Rating r;
    r.time = t;
    r.value = quantize_unit(raw, config.stars, /*include_zero=*/false);
    r.rater = static_cast<RaterId>(rng.uniform_int(0, config.rater_pool - 1));
    r.label = RatingLabel::kHonest;
    trace.ratings.push_back(r);
  }
  return trace;
}

}  // namespace trustrate::data
