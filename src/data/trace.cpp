#include "data/trace.hpp"

#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace trustrate::data {

RatingTrace load_trace_csv(std::istream& in, const std::string& name) {
  RatingTrace trace;
  trace.name = name;
  std::size_t row_number = 0;
  for (const auto& row : read_csv(in)) {
    ++row_number;
    const std::string context = name + " row " + std::to_string(row_number);
    if (row.size() != 3 && row.size() != 4) {
      throw DataError("expected 3-4 fields (time,rater,value[,product]) in " +
                      context);
    }
    Rating r;
    r.time = parse_double_field(row[0], context);
    r.rater = static_cast<RaterId>(parse_int_field(row[1], context));
    r.value = parse_double_field(row[2], context);
    if (row.size() == 4) {
      r.product = static_cast<ProductId>(parse_int_field(row[3], context));
    }
    if (r.value < 0.0 || r.value > 1.0) {
      throw DataError("rating value out of [0,1] in " + context);
    }
    trace.ratings.push_back(r);
  }
  sort_by_time(trace.ratings);
  return trace;
}

void save_trace_csv(const RatingTrace& trace, std::ostream& out) {
  for (const Rating& r : trace.ratings) {
    out << r.time << ',' << r.rater << ',' << r.value << ',' << r.product
        << '\n';
  }
}

}  // namespace trustrate::data
