#include "data/trace.hpp"

#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace trustrate::data {

RatingTrace load_trace_csv(std::istream& in, const std::string& name) {
  RatingTrace trace;
  trace.name = name;
  for (const auto& row : read_csv_rows(in)) {
    const std::string context = name + " line " + std::to_string(row.line);
    const auto& fields = row.fields;
    if (fields.size() != 3 && fields.size() != 4) {
      throw DataError("expected 3-4 fields (time,rater,value[,product]) in " +
                      context);
    }
    Rating r;
    r.time = parse_finite_field(fields[0], context);
    r.rater = static_cast<RaterId>(parse_int_field(fields[1], context));
    r.value = parse_finite_field(fields[2], context);
    if (fields.size() == 4) {
      r.product = static_cast<ProductId>(parse_int_field(fields[3], context));
    }
    if (r.value < 0.0 || r.value > 1.0) {
      throw DataError("rating value out of [0,1] in " + context);
    }
    trace.ratings.push_back(r);
  }
  sort_by_time(trace.ratings);
  return trace;
}

void save_trace_csv(const RatingTrace& trace, std::ostream& out) {
  for (const Rating& r : trace.ratings) {
    out << r.time << ',' << r.rater << ',' << r.value << ',' << r.product
        << '\n';
  }
}

}  // namespace trustrate::data
