// Synthetic movie-rating trace shaped like the Netflix Prize data the paper
// used for Fig. 5 ("Dinosaur Planet", 2003).
//
// The real dataset is proprietary and withdrawn, so we synthesize a trace
// that preserves the properties the AR detector keys on (DESIGN.md §5):
//  * 1-5 star integer ratings (coarse discretization),
//  * bursty Poisson arrivals with a popularity curve — a release spike
//    decaying into a long tail — modulated by a weekly cycle,
//  * a slowly drifting mean opinion,
//  * several hundred days of history.
// Real data can still be used via data::load_trace_csv.
#pragma once

#include "common/rng.hpp"
#include "data/trace.hpp"

namespace trustrate::data {

struct NetflixLikeConfig {
  double days = 700.0;
  int stars = 5;                ///< integer star levels 1..stars

  // Popularity curve: rate(t) = base + peak * (t/t0) * exp(1 - t/t0),
  // a gamma-like release spike peaking at t0.
  double base_rate = 0.8;       ///< ratings/day in the long tail
  double peak_rate = 6.0;       ///< extra ratings/day at the spike
  double peak_day = 120.0;

  /// Weekly arrival modulation amplitude in [0, 1): weekends are busier.
  double weekly_amplitude = 0.3;

  // Opinion: mean star value drifts linearly (as word-of-mouth settles).
  double quality_start = 0.62;  ///< on [0,1]; ~3.1 stars
  double quality_end = 0.68;
  double sigma = 0.22;          ///< rating spread before discretization

  int rater_pool = 3000;        ///< distinct rater ids
};

/// Generates the synthetic trace. Star value s in 1..5 is stored
/// normalized as s/stars (the 5-level no-zero scale).
RatingTrace generate_netflix_like(const NetflixLikeConfig& config, Rng& rng);

/// Instantaneous arrival rate of the popularity curve (exposed for tests).
double netflix_arrival_rate(const NetflixLikeConfig& config, double t);

}  // namespace trustrate::data
