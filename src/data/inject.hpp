// Collaborative-rating injection into an existing trace — the Fig. 5
// experiment: take a (real or synthetic) movie-rating trace and insert the
// paper's two attack types during a chosen interval.
//
// Paper parameters for Dinosaur Planet: attack days 212-272,
// bias_shift1 = 0.2 with recruit_power1 = 0.5, bias_shift2 = 0.25 with
// recruit_power2 = 1, bad_sigma = 0.25 * good_sigma (good_sigma estimated
// from the original ratings).
#pragma once

#include "common/rng.hpp"
#include "data/trace.hpp"

namespace trustrate::data {

struct InjectionConfig {
  double attack_start = 212.0;
  double attack_end = 272.0;

  // Type 1: existing ratings in the window get shifted.
  double bias_shift1 = 0.2;
  double recruit_power1 = 0.5;  ///< fraction of in-window ratings shifted

  // Type 2: extra recruited raters arrive during the window.
  double bias_shift2 = 0.25;
  double recruit_power2 = 1.0;  ///< type-2 rate = empirical in-window rate * this
  double bad_sigma_factor = 0.25;  ///< bad_sigma = factor * empirical rating stddev
};

/// Returns a copy of `trace` with the attack injected. Type-2 raters get
/// fresh ids above the trace's maximum. Ground-truth labels are set on the
/// affected ratings. The result stays time-sorted.
RatingTrace inject_collaborative(const RatingTrace& trace,
                                 const InjectionConfig& config, Rng& rng);

// --------------------------------------------------------- fault injection
//
// Transport-level fault injection for the hardened streaming front-end
// (core/ingest.hpp): where inject_collaborative models *adversarial
// content*, FaultInjector models *hostile delivery* — late arrivals,
// client retries (duplicates), and corrupted records. Tests and
// bench/ablation_fault_tolerance use it to quantify detection quality
// under each fault class against the clean baseline.

struct FaultInjectorConfig {
  /// Fraction of ratings whose *arrival* is delayed by up to
  /// `max_delay_days`, producing out-of-order delivery. Event times are
  /// untouched, so an ingest layer with lateness >= max_delay_days can
  /// repair the stream exactly.
  double delay_fraction = 0.0;
  double max_delay_days = 0.0;

  /// Fraction of ratings resubmitted verbatim immediately after the
  /// original (client retry).
  double duplicate_fraction = 0.0;

  /// Fraction of ratings corrupted in place (NaN or out-of-range value).
  double corrupt_fraction = 0.0;
};

/// What one corrupt() call actually injected. `reordered` counts delayed
/// ratings that ended up arriving after a later-timed rating — the exact
/// quantity IngestStats::reordered observes on the faulted sequence.
struct FaultSummary {
  std::size_t total = 0;       ///< ratings in the faulted arrival sequence
  std::size_t delayed = 0;     ///< ratings selected for arrival delay
  std::size_t reordered = 0;   ///< delayed ratings arriving out of time order
  std::size_t duplicated = 0;  ///< retry copies inserted
  std::size_t corrupted = 0;   ///< ratings made malformed
};

/// Seeded, deterministic stream corrupter. Faults are mutually exclusive
/// per rating (a rating is delayed, duplicated, or corrupted, never two at
/// once) so the summary counts line up one-to-one with IngestStats.
class FaultInjector {
 public:
  FaultInjector(FaultInjectorConfig config, std::uint64_t seed);

  /// Returns the faulted *arrival sequence* for a time-sorted series: the
  /// order in which a stream consumer would receive the ratings. Not
  /// time-sorted when delays are configured. Updates summary().
  RatingSeries corrupt(const RatingSeries& clean);

  const FaultSummary& summary() const { return summary_; }

 private:
  FaultInjectorConfig config_;
  Rng rng_;
  FaultSummary summary_;
};

}  // namespace trustrate::data
