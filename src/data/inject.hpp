// Collaborative-rating injection into an existing trace — the Fig. 5
// experiment: take a (real or synthetic) movie-rating trace and insert the
// paper's two attack types during a chosen interval.
//
// Paper parameters for Dinosaur Planet: attack days 212-272,
// bias_shift1 = 0.2 with recruit_power1 = 0.5, bias_shift2 = 0.25 with
// recruit_power2 = 1, bad_sigma = 0.25 * good_sigma (good_sigma estimated
// from the original ratings).
#pragma once

#include "common/rng.hpp"
#include "data/trace.hpp"

namespace trustrate::data {

struct InjectionConfig {
  double attack_start = 212.0;
  double attack_end = 272.0;

  // Type 1: existing ratings in the window get shifted.
  double bias_shift1 = 0.2;
  double recruit_power1 = 0.5;  ///< fraction of in-window ratings shifted

  // Type 2: extra recruited raters arrive during the window.
  double bias_shift2 = 0.25;
  double recruit_power2 = 1.0;  ///< type-2 rate = empirical in-window rate * this
  double bad_sigma_factor = 0.25;  ///< bad_sigma = factor * empirical rating stddev
};

/// Returns a copy of `trace` with the attack injected. Type-2 raters get
/// fresh ids above the trace's maximum. Ground-truth labels are set on the
/// affected ratings. The result stays time-sorted.
RatingTrace inject_collaborative(const RatingTrace& trace,
                                 const InjectionConfig& config, Rng& rng);

}  // namespace trustrate::data
