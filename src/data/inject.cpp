#include "data/inject.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "stats/descriptive.hpp"

namespace trustrate::data {

RatingTrace inject_collaborative(const RatingTrace& trace,
                                 const InjectionConfig& config, Rng& rng) {
  TRUSTRATE_EXPECTS(config.attack_end > config.attack_start,
                    "attack interval must be well-formed");
  TRUSTRATE_EXPECTS(!trace.ratings.empty(), "cannot inject into an empty trace");

  RatingTrace out = trace;
  out.name = trace.name + "+attack";

  // Empirical statistics of the original trace drive the attack parameters,
  // mirroring how the paper set badVar = 0.25 * goodVar of the real data.
  const auto values = values_of(trace.ratings);
  const auto summary = stats::summarize(values);
  const double bad_sigma = config.bad_sigma_factor * summary.stddev;

  // Empirical arrival rate inside the window decides the type-2 rate.
  std::size_t in_window = 0;
  RaterId max_rater = 0;
  for (const Rating& r : trace.ratings) {
    if (r.time >= config.attack_start && r.time < config.attack_end) ++in_window;
    if (r.rater != kNoRater) max_rater = std::max(max_rater, r.rater);
  }
  const double window_days = config.attack_end - config.attack_start;
  const double base_rate = static_cast<double>(in_window) / window_days;

  auto quantize = [&](double v) {
    return quantize_unit(v, out.levels, out.levels_include_zero);
  };

  // Type 1: shift a fraction of existing in-window ratings.
  for (Rating& r : out.ratings) {
    if (r.time < config.attack_start || r.time >= config.attack_end) continue;
    if (!rng.bernoulli(config.recruit_power1)) continue;
    r.value = quantize(r.value + config.bias_shift1);
    r.label = RatingLabel::kCollaborative1;
  }

  // Type 2: extra Poisson stream around (local mean + bias).
  const double type2_rate = base_rate * config.recruit_power2;
  if (type2_rate > 0.0) {
    RaterId next_rater = max_rater + 1;
    for (double t = config.attack_start + rng.exponential(type2_rate);
         t < config.attack_end; t += rng.exponential(type2_rate)) {
      Rating r;
      r.time = t;
      r.value = quantize(rng.gaussian(summary.mean + config.bias_shift2, bad_sigma));
      r.rater = next_rater++;
      r.label = RatingLabel::kCollaborative2;
      out.ratings.push_back(r);
    }
  }

  sort_by_time(out.ratings);
  return out;
}

}  // namespace trustrate::data
