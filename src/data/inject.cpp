#include "data/inject.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "stats/descriptive.hpp"

namespace trustrate::data {

RatingTrace inject_collaborative(const RatingTrace& trace,
                                 const InjectionConfig& config, Rng& rng) {
  TRUSTRATE_EXPECTS(config.attack_end > config.attack_start,
                    "attack interval must be well-formed");
  TRUSTRATE_EXPECTS(!trace.ratings.empty(), "cannot inject into an empty trace");

  RatingTrace out = trace;
  out.name = trace.name + "+attack";

  // Empirical statistics of the original trace drive the attack parameters,
  // mirroring how the paper set badVar = 0.25 * goodVar of the real data.
  const auto values = values_of(trace.ratings);
  const auto summary = stats::summarize(values);
  const double bad_sigma = config.bad_sigma_factor * summary.stddev;

  // Empirical arrival rate inside the window decides the type-2 rate.
  std::size_t in_window = 0;
  RaterId max_rater = 0;
  for (const Rating& r : trace.ratings) {
    if (r.time >= config.attack_start && r.time < config.attack_end) ++in_window;
    if (r.rater != kNoRater) max_rater = std::max(max_rater, r.rater);
  }
  const double window_days = config.attack_end - config.attack_start;
  const double base_rate = static_cast<double>(in_window) / window_days;

  auto quantize = [&](double v) {
    return quantize_unit(v, out.levels, out.levels_include_zero);
  };

  // Type 1: shift a fraction of existing in-window ratings.
  for (Rating& r : out.ratings) {
    if (r.time < config.attack_start || r.time >= config.attack_end) continue;
    if (!rng.bernoulli(config.recruit_power1)) continue;
    r.value = quantize(r.value + config.bias_shift1);
    r.label = RatingLabel::kCollaborative1;
  }

  // Type 2: extra Poisson stream around (local mean + bias).
  const double type2_rate = base_rate * config.recruit_power2;
  if (type2_rate > 0.0) {
    RaterId next_rater = max_rater + 1;
    for (double t = config.attack_start + rng.exponential(type2_rate);
         t < config.attack_end; t += rng.exponential(type2_rate)) {
      Rating r;
      r.time = t;
      r.value = quantize(rng.gaussian(summary.mean + config.bias_shift2, bad_sigma));
      r.rater = next_rater++;
      r.label = RatingLabel::kCollaborative2;
      out.ratings.push_back(r);
    }
  }

  sort_by_time(out.ratings);
  return out;
}

// --------------------------------------------------------- fault injection

FaultInjector::FaultInjector(FaultInjectorConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  TRUSTRATE_EXPECTS(config_.delay_fraction >= 0.0 &&
                        config_.duplicate_fraction >= 0.0 &&
                        config_.corrupt_fraction >= 0.0,
                    "fault fractions must be >= 0");
  TRUSTRATE_EXPECTS(config_.delay_fraction + config_.duplicate_fraction +
                            config_.corrupt_fraction <=
                        1.0,
                    "fault fractions must sum to <= 1 (mutually exclusive)");
  TRUSTRATE_EXPECTS(config_.max_delay_days >= 0.0,
                    "arrival delay bound must be >= 0");
}

RatingSeries FaultInjector::corrupt(const RatingSeries& clean) {
  TRUSTRATE_EXPECTS(is_time_sorted(clean),
                    "fault injection needs a time-sorted series");
  summary_ = {};

  struct Arrival {
    Rating rating;
    double key = 0.0;  ///< arrival time (event time + optional delay)
    std::size_t seq = 0;
    bool duplicate = false;
    bool delayed = false;
    bool corrupted = false;
  };
  std::vector<Arrival> arrivals;
  arrivals.reserve(clean.size() + clean.size() / 4);

  std::size_t seq = 0;
  for (const Rating& r : clean) {
    const double u = rng_.uniform();
    const double c = config_.corrupt_fraction;
    const double d = c + config_.duplicate_fraction;
    const double l = d + config_.delay_fraction;
    if (u < c) {
      // Alternate the two malformation kinds the ingest layer rejects.
      Rating bad = r;
      bad.value = summary_.corrupted % 2 == 0
                      ? std::numeric_limits<double>::quiet_NaN()
                      : bad.value + 2.0;
      ++summary_.corrupted;
      arrivals.push_back({bad, r.time, seq++, false, false, true});
    } else if (u < d) {
      arrivals.push_back({r, r.time, seq++, false, false, false});
      arrivals.push_back({r, r.time, seq++, true, false, false});
      ++summary_.duplicated;
    } else if (u < l) {
      const double key = r.time + rng_.uniform(0.0, config_.max_delay_days);
      ++summary_.delayed;
      arrivals.push_back({r, key, seq++, false, true, false});
    } else {
      arrivals.push_back({r, r.time, seq++, false, false, false});
    }
  }

  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              return a.key != b.key ? a.key < b.key : a.seq < b.seq;
            });

  // Count the delayed ratings that actually arrive out of order — the exact
  // quantity IngestStats::reordered observes, provided `clean` carries no
  // natural duplicates. Corrupted and duplicate arrivals are dropped by the
  // ingest layer before its high-water mark moves, so they are skipped.
  double max_time = -std::numeric_limits<double>::infinity();
  for (const Arrival& a : arrivals) {
    if (a.duplicate || a.corrupted) continue;
    if (a.rating.time < max_time) {
      if (a.delayed) ++summary_.reordered;
    } else {
      max_time = a.rating.time;
    }
  }

  RatingSeries out;
  out.reserve(arrivals.size());
  for (const Arrival& a : arrivals) out.push_back(a.rating);
  summary_.total = out.size();
  return out;
}

}  // namespace trustrate::data
