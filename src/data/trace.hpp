// Rating traces: named rating series with scale metadata, plus CSV I/O so
// real datasets (e.g. the Netflix Prize files, when available) can be
// converted and loaded.
//
// CSV format (no header): time_days,rater_id,value[,product_id]
// where value is on the unit interval; the product column is optional on
// input (defaults to 0) and always written on output.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.hpp"

namespace trustrate::data {

struct RatingTrace {
  std::string name;
  int levels = 5;                   ///< discrete scale size
  bool levels_include_zero = false; ///< whether 0 is a valid level
  RatingSeries ratings;             ///< time-sorted

  double duration() const {
    return ratings.empty() ? 0.0 : ratings.back().time - ratings.front().time;
  }
};

/// Parses a trace from CSV rows. Throws DataError on malformed rows or
/// values outside [0, 1]. The result is sorted by time.
RatingTrace load_trace_csv(std::istream& in, const std::string& name);

/// Writes a trace in the same CSV format.
void save_trace_csv(const RatingTrace& trace, std::ostream& out);

}  // namespace trustrate::data
