// Incremental covariance-method AR estimation for sliding windows.
//
// The paper's detector (§III-A.1) refits the covariance-method normal
// equations on every sliding window — 50%-overlap windows mean every
// rating is fitted twice and every fit rebuilds the c(i, j) cross-product
// matrix from scratch with one cache pass per matrix entry. This module
// exploits the overlap.
//
// ## The recurrence
//
// For window values y(0..N−1) and order p, the covariance normal equations
// need c(i, j) = Σ_{t=p}^{N−1} y(t−i) y(t−j) for 0 ≤ i, j ≤ p. Every term
// is a lag product: with d = j − i ≥ 0 and u = t − i,
//
//     c(i, i+d) = Σ_{u=p−i}^{N−1−i} q_d(u),   q_d(u) = y(u) · y(u−d).
//
// All entries on diagonal d of the matrix are sums of the *same* product
// column q_d over ranges that differ only at the ends. The estimator
// therefore maintains the p+1 product columns q_0..q_p incrementally as
// ratings enter (update: p+1 multiplies per arriving rating) and leave
// (downdate: the column slots are simply evicted) the fit range, and per
// window computes
//
//     S_d = Σ_{u=p}^{N−1} q_d(u)                  (one SIMD reduction)
//     c(i, i+d) = S_d + Σ_{k=1}^{i} q_d(p−k) − Σ_{k=1}^{i} q_d(N−k)
//
// — O((p+1)·N) fused work instead of O((p+1)²·N) strided passes, with the
// products themselves computed once per rating instead of once per window
// per matrix diagonal.
//
// ## The bitwise contract
//
// The differential oracle (testkit) demands that the incremental estimator
// and a from-scratch fit of the same span produce *hexfloat-identical*
// models. A running c(i, j) sum updated with floating-point add/subtract
// cannot meet that bar: the downdate is not an exact inverse of the
// update, so the maintained sum drifts from the freshly computed one. The
// recurrence is therefore realized one level down: the *columns* are the
// maintained state (each slot is one exactly-rounded multiply, identical
// no matter when it was computed), and every window's sums are formed by
// the canonical fixed-shape reduction of common/simd.hpp. Incremental and
// from-scratch fits then execute literally the same arithmetic in the
// same order — equality is by construction, and the oracle pins it.
//
// Degenerate windows (no energy) and singular normal equations follow the
// same order-reduction ladder as signal/ar.hpp's fit_ar_covariance, and
// both paths share this file's kernel, so the fallback decisions are
// taken from identical inputs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "signal/ar.hpp"

namespace trustrate::signal {

/// Reusable scratch for covariance fits. All buffers grow to high-water
/// marks and are reused; after warm-up a fit performs zero heap
/// allocations.
struct CovWorkspace {
  std::vector<double> c;           ///< (p+1)×(p+1) cross-product matrix
  std::vector<double> ldlt_l;      ///< p×p unit lower-triangular factor
  std::vector<double> ldlt_d;      ///< p diagonal of D
  std::vector<double> gauss_a;     ///< p×p Gaussian-elimination copy
  std::vector<double> rhs;         ///< p right-hand side / solution buffer
  std::vector<double> coeffs;      ///< fitted a_1..a_p (first `fitted_order`)
  std::vector<double> fresh_cols;  ///< (p+1)×n product columns, scratch fits
  std::vector<const double*> col_ptrs;  ///< column pointer table
  std::vector<const double*> sum_ptrs;  ///< shifted pointers for sum_rows
  std::vector<double> diag_sums;        ///< S_0..S_p per-diagonal sums
  int ready_order = -1;        ///< high-water order already reserved
  std::size_t ready_len = 0;   ///< high-water window length already reserved

  /// Grows every buffer for the given order / window length. O(1) when the
  /// high-water marks already cover the request (the per-window path).
  void reserve(int order, std::size_t window_len);
};

/// Result of one covariance-method window fit. Coefficients live in the
/// workspace (`CovWorkspace::coeffs[0..fitted_order)`) so the steady-state
/// path never allocates; fit_ar_covariance_canonical copies them out for
/// ArModel consumers.
struct CovFitStats {
  int requested_order = 0;
  int fitted_order = 0;           ///< may be < requested after degeneracy
  std::size_t sample_count = 0;   ///< N
  double residual_energy = 0.0;
  double reference_energy = 0.0;  ///< c(0, 0) of the accepted fit
  bool degenerate = false;        ///< no signal energy in the window

  /// residual_energy / (N − requested_order); the ArModel::residual_variance
  /// scale after the df fix (requested order, not the reduced one).
  double residual_variance() const {
    const auto df = static_cast<std::ptrdiff_t>(sample_count) -
                    static_cast<std::ptrdiff_t>(requested_order);
    if (sample_count == 0 || df <= 0) return 0.0;
    return residual_energy / static_cast<double>(df);
  }

  /// residual_energy / reference_energy clamped to [0, 1]; 0 when degenerate.
  double normalized_error() const;
};

/// Covariance-method fit of x through the canonical kernel, refitting from
/// scratch (columns rebuilt, then the same reductions as the incremental
/// path). Zero steady-state allocations. Same preconditions as
/// fit_ar_covariance: order >= 1, x.size() >= 2*order + 1, no demeaning.
CovFitStats fit_cov_scratch(std::span<const double> x, int order,
                            CovWorkspace& ws);

/// Convenience wrapper producing a full ArModel (allocates; for tests,
/// ablations and the differential oracle).
ArModel fit_ar_covariance_canonical(std::span<const double> x, int order);

/// Sliding-window covariance estimator. Feed it monotonically advancing
/// index windows over one time-sorted series:
///
///   SlidingCovarianceEstimator est;
///   CovWorkspace ws;
///   est.begin_series(order);
///   for (each window [first, last)) {
///     est.advance(series, first, last);     // update/downdate columns
///     CovFitStats s = est.fit(ws);          // fit the current window
///   }
///
/// `advance` appends the values of series[prev_last..last) — computing each
/// lag-product column entry exactly once — and evicts everything below
/// `first`. Eviction compacts the storage in place (amortized O(1) per
/// rating, no allocation after the buffers reach the largest window size).
class SlidingCovarianceEstimator {
 public:
  /// Resets all state for a new series. `capacity_hint` optionally
  /// pre-sizes the buffers (ratings per window).
  void begin_series(int order, std::size_t capacity_hint = 0);

  /// Advances the window to [first, last). Both endpoints must be
  /// monotonically non-decreasing across calls and last <= series.size().
  void advance(const RatingSeries& series, std::size_t first, std::size_t last);

  /// Fits the current window. Requires a preceding advance() with
  /// last − first >= 2*order + 1.
  CovFitStats fit(CovWorkspace& ws) const;

  int order() const { return order_; }
  std::size_t window_size() const { return last_ - first_; }

 private:
  void ensure_capacity(std::size_t needed);

  int order_ = 0;
  std::size_t base_ = 0;   ///< series index stored at buffer slot 0
  std::size_t first_ = 0;  ///< current window [first_, last_)
  std::size_t last_ = 0;
  std::size_t cap_ = 0;    ///< slots per row
  /// SoA rows: row 0 = values, row 1+d = column q_d, each cap_ wide.
  std::vector<double> rows_;
  /// Column append cursors handed to simd::multiply_lagged (sized once in
  /// begin_series; refreshed per advance because compaction moves rows).
  std::vector<double*> lag_ptrs_;
};

}  // namespace trustrate::signal
