// AR (all-pole) power spectral density estimation.
//
// An AR(p) model fitted to a rating stream doubles as a parametric
// spectrum estimator (the classic use of the covariance method in Hayes):
//
//     S(f) = sigma^2 / |1 + a_1 e^{-j2πf} + ... + a_p e^{-j2πfp}|^2
//
// For the detector this offers a diagnostic view: honest (white) windows
// have a flat spectrum; a collaborative campaign concentrates power at
// low frequencies (a slowly varying bias component). Extension beyond the
// paper, used by the spectral-flatness diagnostics and ablations.
#pragma once

#include <span>
#include <vector>

#include "signal/ar.hpp"

namespace trustrate::signal {

/// Power spectral density of a fitted AR model at normalized frequency
/// f in [0, 0.5] (cycles per sample). Requires a non-degenerate model.
double ar_psd(const ArModel& model, double frequency);

/// PSD evaluated on `bins` equally spaced frequencies over [0, 0.5].
/// Requires bins >= 2.
std::vector<double> ar_psd_grid(const ArModel& model, int bins);

/// Spectral flatness (Wiener entropy): geometric mean / arithmetic mean of
/// the PSD over a `bins`-point grid, in (0, 1]. 1 = perfectly flat (white
/// noise); near 0 = strongly peaked (predictable structure). A scale-free
/// companion statistic to the detector's residual variance.
double spectral_flatness(const ArModel& model, int bins = 128);

/// Convenience: fits AR(order) by the covariance method and returns the
/// spectral flatness of the window. Same preconditions as
/// fit_ar_covariance.
double window_spectral_flatness(std::span<const double> xs, int order,
                                ArOptions options = {});

}  // namespace trustrate::signal
