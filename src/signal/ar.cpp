#include "signal/ar.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "signal/matrix.hpp"

namespace trustrate::signal {

namespace {

constexpr double kTinyEnergy = 1e-14;

// Copies x, subtracting the mean when requested; returns the subtracted mean.
double preprocess(std::span<const double> x, bool demean, std::vector<double>& out) {
  out.assign(x.begin(), x.end());
  if (!demean) return 0.0;
  const double m = mean_of(x);
  for (double& v : out) v -= m;
  return m;
}

void finalize_error(ArModel& model) {
  if (model.reference_energy <= kTinyEnergy) {
    model.degenerate = true;
    model.normalized_error = 0.0;
    model.residual_energy = 0.0;
    return;
  }
  model.normalized_error =
      std::clamp(model.residual_energy / model.reference_energy, 0.0, 1.0);
}

// Covariance-method normal equations at order p for signal y.
// Returns false when the system is singular.
bool try_covariance_fit(const std::vector<double>& y, int p, ArModel& model) {
  const std::size_t n = y.size();
  const auto pp = static_cast<std::size_t>(p);

  // c(i, j) = sum_{t=p}^{N-1} y(t-i) y(t-j), 0 <= i, j <= p.
  Matrix c(pp + 1, pp + 1, 0.0);
  for (std::size_t i = 0; i <= pp; ++i) {
    for (std::size_t j = i; j <= pp; ++j) {
      double acc = 0.0;
      for (std::size_t t = pp; t < n; ++t) acc += y[t - i] * y[t - j];
      c(i, j) = acc;
      c(j, i) = acc;
    }
  }

  Matrix a(pp, pp, 0.0);
  std::vector<double> rhs(pp, 0.0);
  for (std::size_t i = 1; i <= pp; ++i) {
    for (std::size_t j = 1; j <= pp; ++j) a(i - 1, j - 1) = c(i, j);
    rhs[i - 1] = -c(i, 0);
  }

  auto solution = solve_ldlt(a, rhs);
  if (!solution) solution = solve_gaussian(a, rhs);
  if (!solution) return false;

  model.coeffs = std::move(*solution);
  // E_min = c(0,0) + sum_k a_k c(0,k); guard against cancellation below 0.
  double e = c(0, 0);
  for (std::size_t k = 1; k <= pp; ++k) e += model.coeffs[k - 1] * c(0, k);
  model.residual_energy = std::max(e, 0.0);
  model.reference_energy = c(0, 0);
  return true;
}

}  // namespace

double ArModel::predict_next(std::span<const double> history) const {
  TRUSTRATE_EXPECTS(history.size() >= coeffs.size(),
                    "predict_next needs at least `order` history samples");
  double acc = 0.0;
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    acc -= coeffs[k] * (history[history.size() - 1 - k] - mean);
  }
  return acc + mean;
}

ArModel fit_ar_covariance(std::span<const double> x, int order, ArOptions options) {
  TRUSTRATE_EXPECTS(order >= 1, "AR order must be >= 1");
  TRUSTRATE_EXPECTS(x.size() >= 2 * static_cast<std::size_t>(order) + 1,
                    "covariance method needs x.size() >= 2*order + 1");
  ArModel model;
  model.requested_order = order;
  model.sample_count = x.size();
  std::vector<double> y;
  model.mean = preprocess(x, options.demean, y);

  // A constant (or constant-after-demean) window has no energy to model.
  if (energy(y) <= kTinyEnergy) {
    model.reference_energy = 0.0;
    finalize_error(model);
    return model;
  }

  // Singular normal equations (e.g. a constant level with p >= 2 makes the
  // covariance matrix rank-1) are handled by order reduction: the lower
  // order model describes the same signal exactly.
  for (int p = order; p >= 1; --p) {
    if (try_covariance_fit(y, p, model)) {
      finalize_error(model);
      return model;
    }
  }
  // Even order 1 was singular: y(t-1) is identically 0 over the fit range.
  // Nothing is predictable; report full error.
  model.coeffs.clear();
  model.reference_energy = energy(y);
  model.residual_energy = model.reference_energy;
  finalize_error(model);
  return model;
}

ArModel fit_ar_autocorrelation(std::span<const double> x, int order,
                               ArOptions options) {
  TRUSTRATE_EXPECTS(order >= 1, "AR order must be >= 1");
  TRUSTRATE_EXPECTS(x.size() >= 2 * static_cast<std::size_t>(order) + 1,
                    "autocorrelation method needs x.size() >= 2*order + 1");
  ArModel model;
  model.requested_order = order;
  model.sample_count = x.size();
  std::vector<double> y;
  model.mean = preprocess(x, options.demean, y);
  const std::size_t n = y.size();

  // Biased autocorrelation estimates r(0..p).
  std::vector<double> r(static_cast<std::size_t>(order) + 1, 0.0);
  for (int k = 0; k <= order; ++k) {
    double acc = 0.0;
    for (std::size_t t = 0; t + static_cast<std::size_t>(k) < n; ++t) {
      acc += y[t] * y[t + static_cast<std::size_t>(k)];
    }
    r[static_cast<std::size_t>(k)] = acc / static_cast<double>(n);
  }

  model.reference_energy = r[0] * static_cast<double>(n);
  if (r[0] <= kTinyEnergy) {
    model.reference_energy = 0.0;
    finalize_error(model);
    return model;
  }

  // Levinson–Durbin recursion.
  std::vector<double> a(static_cast<std::size_t>(order), 0.0);
  double e = r[0];
  for (int m = 0; m < order; ++m) {
    double k_num = r[static_cast<std::size_t>(m) + 1];
    for (int i = 0; i < m; ++i) {
      k_num += a[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(m - i)];
    }
    const double k_m = (e > kTinyEnergy) ? -k_num / e : 0.0;
    // Update coefficients a_1..a_{m+1}.
    std::vector<double> prev(a.begin(), a.begin() + m);
    a[static_cast<std::size_t>(m)] = k_m;
    for (int i = 0; i < m; ++i) {
      a[static_cast<std::size_t>(i)] =
          prev[static_cast<std::size_t>(i)] + k_m * prev[static_cast<std::size_t>(m - 1 - i)];
    }
    e *= (1.0 - k_m * k_m);
    if (e < 0.0) e = 0.0;
  }
  model.coeffs = std::move(a);
  model.residual_energy = e * static_cast<double>(n);
  finalize_error(model);
  return model;
}

ArModel fit_ar_burg(std::span<const double> x, int order, ArOptions options) {
  TRUSTRATE_EXPECTS(order >= 1, "AR order must be >= 1");
  TRUSTRATE_EXPECTS(x.size() >= 2 * static_cast<std::size_t>(order) + 1,
                    "Burg method needs x.size() >= 2*order + 1");
  ArModel model;
  model.requested_order = order;
  model.sample_count = x.size();
  std::vector<double> y;
  model.mean = preprocess(x, options.demean, y);
  const std::size_t n = y.size();

  model.reference_energy = energy(y);
  if (model.reference_energy <= kTinyEnergy) {
    model.reference_energy = 0.0;
    finalize_error(model);
    return model;
  }

  std::vector<double> f(y);   // forward errors
  std::vector<double> b(y);   // backward errors
  std::vector<double> a;      // a_1..a_m
  double e = model.reference_energy / static_cast<double>(n);

  for (int m = 0; m < order; ++m) {
    // Reflection coefficient maximizing error reduction.
    double num = 0.0;
    double den = 0.0;
    for (std::size_t t = static_cast<std::size_t>(m) + 1; t < n; ++t) {
      num += f[t] * b[t - 1];
      den += f[t] * f[t] + b[t - 1] * b[t - 1];
    }
    const double k = (den > kTinyEnergy) ? -2.0 * num / den : 0.0;

    // Update AR coefficients.
    std::vector<double> prev(a);
    a.resize(static_cast<std::size_t>(m) + 1);
    a[static_cast<std::size_t>(m)] = k;
    for (int i = 0; i < m; ++i) {
      a[static_cast<std::size_t>(i)] =
          prev[static_cast<std::size_t>(i)] + k * prev[static_cast<std::size_t>(m - 1 - i)];
    }

    // Update error sequences (in place, back-to-front on b).
    for (std::size_t t = n - 1; t > static_cast<std::size_t>(m); --t) {
      const double f_new = f[t] + k * b[t - 1];
      const double b_new = b[t - 1] + k * f[t];
      f[t] = f_new;
      b[t] = b_new;
    }
    e *= (1.0 - k * k);
    if (e < 0.0) e = 0.0;
  }
  model.coeffs = std::move(a);
  model.residual_energy = e * static_cast<double>(n);
  finalize_error(model);
  return model;
}

std::vector<double> ar_residuals(std::span<const double> x, const ArModel& model) {
  const auto p = static_cast<std::size_t>(model.order());
  TRUSTRATE_EXPECTS(x.size() > p, "ar_residuals needs more samples than the order");
  std::vector<double> out;
  out.reserve(x.size() - p);
  for (std::size_t t = p; t < x.size(); ++t) {
    double e = x[t] - model.mean;
    for (std::size_t k = 1; k <= p; ++k) {
      e += model.coeffs[k - 1] * (x[t - k] - model.mean);
    }
    out.push_back(e);
  }
  return out;
}

int select_order_fpe(std::span<const double> x, int max_order, ArOptions options) {
  TRUSTRATE_EXPECTS(max_order >= 1, "select_order_fpe needs max_order >= 1");
  TRUSTRATE_EXPECTS(x.size() >= 2 * static_cast<std::size_t>(max_order) + 2,
                    "select_order_fpe needs x.size() >= 2*max_order + 2");
  const double n = static_cast<double>(x.size());
  std::vector<double> fpe(static_cast<std::size_t>(max_order) + 1, 0.0);
  double best_fpe = std::numeric_limits<double>::infinity();
  for (int p = 1; p <= max_order; ++p) {
    const ArModel m = fit_ar_covariance(x, p, options);
    const double e_p = m.residual_energy / n;
    fpe[static_cast<std::size_t>(p)] = e_p * (n + p + 1.0) / (n - p - 1.0);
    best_fpe = std::min(best_fpe, fpe[static_cast<std::size_t>(p)]);
  }
  // Parsimony: the smallest order within 1% of the best FPE. Raw argmin
  // tends to overfit by a coefficient or two on finite records.
  for (int p = 1; p <= max_order; ++p) {
    if (fpe[static_cast<std::size_t>(p)] <= best_fpe * 1.01) return p;
  }
  return max_order;
}

std::vector<double> synthesize_ar(std::span<const double> coeffs,
                                  std::span<const double> innovations) {
  std::vector<double> x(innovations.size(), 0.0);
  const std::size_t p = coeffs.size();
  for (std::size_t t = 0; t < x.size(); ++t) {
    double acc = innovations[t];
    for (std::size_t k = 1; k <= p && k <= t; ++k) {
      acc -= coeffs[k - 1] * x[t - k];
    }
    x[t] = acc;
  }
  return x;
}

}  // namespace trustrate::signal
