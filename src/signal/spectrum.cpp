#include "signal/spectrum.hpp"

#include <cmath>
#include <complex>

#include "common/error.hpp"

namespace trustrate::signal {

double ar_psd(const ArModel& model, double frequency) {
  TRUSTRATE_EXPECTS(frequency >= 0.0 && frequency <= 0.5,
                    "normalized frequency must be in [0, 0.5]");
  TRUSTRATE_EXPECTS(!model.degenerate, "degenerate model has no spectrum");
  const double omega = 2.0 * M_PI * frequency;
  std::complex<double> denom(1.0, 0.0);
  for (std::size_t k = 0; k < model.coeffs.size(); ++k) {
    const double angle = -omega * static_cast<double>(k + 1);
    denom += model.coeffs[k] * std::complex<double>(std::cos(angle), std::sin(angle));
  }
  const double mag2 = std::norm(denom);
  const double sigma2 = std::max(model.residual_variance(), 1e-15);
  return sigma2 / std::max(mag2, 1e-15);
}

std::vector<double> ar_psd_grid(const ArModel& model, int bins) {
  TRUSTRATE_EXPECTS(bins >= 2, "PSD grid needs at least 2 bins");
  std::vector<double> psd(static_cast<std::size_t>(bins));
  for (int i = 0; i < bins; ++i) {
    const double f = 0.5 * static_cast<double>(i) / (bins - 1);
    psd[static_cast<std::size_t>(i)] = ar_psd(model, f);
  }
  return psd;
}

double spectral_flatness(const ArModel& model, int bins) {
  const auto psd = ar_psd_grid(model, bins);
  double log_sum = 0.0;
  double sum = 0.0;
  for (double p : psd) {
    log_sum += std::log(p);
    sum += p;
  }
  const double geometric = std::exp(log_sum / static_cast<double>(psd.size()));
  const double arithmetic = sum / static_cast<double>(psd.size());
  if (arithmetic <= 0.0) return 1.0;
  return std::min(geometric / arithmetic, 1.0);
}

double window_spectral_flatness(std::span<const double> xs, int order,
                                ArOptions options) {
  const ArModel model = fit_ar_covariance(xs, order, options);
  if (model.degenerate) return 0.0;  // constant window: maximally structured
  return spectral_flatness(model);
}

}  // namespace trustrate::signal
