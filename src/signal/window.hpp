// Windowing helpers: the paper slices rating streams into (possibly
// overlapping) windows, either by time span or by rating count, before
// fitting the AR model (§III-A.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace trustrate::signal {

/// Half-open time interval [start, end) in days.
struct TimeWindow {
  double start = 0.0;
  double end = 0.0;

  bool contains(double t) const { return t >= start && t < end; }
  double center() const { return 0.5 * (start + end); }
};

/// Half-open index range [begin, end) into a series.
struct IndexWindow {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
};

/// Tiling of [t0, t1) with windows of `width` days advancing by `step` days
/// (step < width produces overlapping windows; the paper uses width 10,
/// step 5). The last window may extend past t1 so the tail is covered.
/// Requires width > 0, step > 0, t1 > t0.
std::vector<TimeWindow> make_time_windows(double t0, double t1, double width,
                                          double step);

/// Count-based windows of `window` consecutive samples advancing by `step`
/// (Fig. 4's model error uses 50-rating windows). Windows that would run
/// past `n` are dropped. Requires window >= 1, step >= 1.
std::vector<IndexWindow> make_count_windows(std::size_t n, std::size_t window,
                                            std::size_t step);

/// Allocation-reusing variants: clear `out` and refill it with the same
/// tiling the value-returning functions produce. The detector's per-window
/// scratch path uses these so steady-state analysis never reallocates the
/// window list.
void make_time_windows_into(double t0, double t1, double width, double step,
                            std::vector<TimeWindow>& out);
void make_count_windows_into(std::size_t n, std::size_t window, std::size_t step,
                             std::vector<IndexWindow>& out);

/// Index range of ratings (in a time-sorted series) falling inside `w`.
/// Binary search, O(log n).
IndexWindow indices_in_window(const RatingSeries& series, const TimeWindow& w);

/// Values of the ratings inside `w` (time-sorted series).
std::vector<double> values_in_window(const RatingSeries& series, const TimeWindow& w);

}  // namespace trustrate::signal
