// Autoregressive (AR) all-pole signal modeling.
//
// This is the paper's core machinery (§III-A.1): ratings inside a window are
// treated as a discrete signal x(0..N-1) and fitted with an order-p AR
// model
//
//     x(n) ≈ −a_1 x(n−1) − a_2 x(n−2) − ... − a_p x(n−p)
//
// The *normalized model error* — residual energy divided by the signal
// energy over the predicted range — is the detector's statistic: honest
// ratings behave like white noise (error stays high); collaborative ratings
// inject a predictable component (error drops).
//
// Three estimators are provided:
//  * covariance method (Hayes §4.6) — the paper's choice (Matlab `covm`);
//    exact least squares over n = p..N−1, no windowing bias.
//  * autocorrelation method via Levinson–Durbin — stationary Yule–Walker
//    solution; cheaper, biased at short N.
//  * Burg method — forward/backward lattice; best short-record spectral
//    behaviour (extension beyond the paper, used in ablations).
//
// Demeaning: the paper argues x(t) − E[x(t)] should be white for honest
// ratings, but its plotted error magnitudes (0.01…0.04 on honest data) are
// only reproducible when the window mean is *kept* in the signal, so the
// nearly-constant mean level is itself modeled (an AR model captures a DC
// level exactly). `ArOptions::demean` therefore defaults to false — the
// paper's operating point — and can be flipped for the ablation benches.
#pragma once

#include <span>
#include <vector>

namespace trustrate::signal {

/// A fitted AR model plus its error decomposition.
struct ArModel {
  /// Coefficients a_1..a_p of the prediction-error filter [1, a_1, ..., a_p].
  /// May be shorter than the requested order when degeneracy forced an
  /// order reduction (see `requested_order`).
  std::vector<double> coeffs;

  int requested_order = 0;  ///< order the caller asked for
  double mean = 0.0;        ///< subtracted mean (0 when demean == false)

  double residual_energy = 0.0;   ///< sum of squared prediction errors
  double reference_energy = 0.0;  ///< energy of the signal over the fit range
  std::size_t sample_count = 0;   ///< N: samples the model was fitted on

  /// residual_energy / reference_energy, clamped to [0, 1].
  /// Degenerate windows (reference energy ~ 0, i.e. a constant signal after
  /// optional demeaning) report 0.0 — "perfectly predictable" — and set
  /// `degenerate`; for rating streams a constant window is exactly the
  /// collaborative signature, so treating it as zero-error is the intended
  /// reading. The value the paper calls e(k).
  double normalized_error = 1.0;

  bool degenerate = false;

  /// Innovation-variance estimate: residual_energy / (N − p) with p the
  /// *requested* order. This is the quantity Matlab's covariance-method
  /// routines report as the model error, and the scale on which the
  /// paper's detection threshold (0.02) lives: for honest ratings it
  /// approaches the rating variance; a collaborative block collapses it.
  /// 0 for degenerate windows.
  ///
  /// The degrees of freedom deliberately use `requested_order`, not
  /// `order()`: a degeneracy-forced order reduction must not silently
  /// shift the df from the documented N − p and move the statistic off
  /// the scale the fixed threshold was calibrated for (it previously did —
  /// see the rank-deficient-window regression test in signal_test).
  double residual_variance() const {
    const auto df = static_cast<std::ptrdiff_t>(sample_count) -
                    static_cast<std::ptrdiff_t>(requested_order);
    if (sample_count == 0 || df <= 0) return 0.0;
    return residual_energy / static_cast<double>(df);
  }

  int order() const { return static_cast<int>(coeffs.size()); }

  /// One-step prediction from the `order()` most recent samples
  /// (history.back() is x(n−1)). Requires history.size() >= order().
  double predict_next(std::span<const double> history) const;
};

/// Estimator options shared by all fit functions.
struct ArOptions {
  bool demean = false;  ///< subtract the window mean before fitting
};

/// Covariance-method (least squares / Prony) AR fit.
/// Requires order >= 1 and x.size() >= 2 * order + 1 so the normal
/// equations are over-determined. Singular normal equations trigger an
/// automatic order reduction (documented degeneracy, not an error).
ArModel fit_ar_covariance(std::span<const double> x, int order, ArOptions options = {});

/// Autocorrelation-method AR fit via the Levinson–Durbin recursion.
/// Same preconditions as fit_ar_covariance.
ArModel fit_ar_autocorrelation(std::span<const double> x, int order,
                               ArOptions options = {});

/// Burg-method AR fit (forward-backward lattice).
/// Same preconditions as fit_ar_covariance.
ArModel fit_ar_burg(std::span<const double> x, int order, ArOptions options = {});

/// Prediction-error sequence e(n) = x(n) + Σ a_k x(n−k) for n = p..N−1,
/// after applying the model's stored mean. Size = x.size() − order().
std::vector<double> ar_residuals(std::span<const double> x, const ArModel& model);

/// Final prediction error criterion FPE(p) = E_p * (N + p + 1) / (N − p − 1)
/// evaluated with the covariance method for p = 1..max_order; returns the
/// minimizing order. Requires x.size() >= 2 * max_order + 2.
int select_order_fpe(std::span<const double> x, int max_order, ArOptions options = {});

/// Synthesizes `n` samples of an AR process driven by the given white-noise
/// innovations: x(n) = −Σ a_k x(n−k) + w(n), zero initial state. Used by
/// tests to verify estimator recovery.
std::vector<double> synthesize_ar(std::span<const double> coeffs,
                                  std::span<const double> innovations);

}  // namespace trustrate::signal
