#include "signal/window.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trustrate::signal {

void make_time_windows_into(double t0, double t1, double width, double step,
                            std::vector<TimeWindow>& out) {
  TRUSTRATE_EXPECTS(width > 0.0 && step > 0.0, "width and step must be positive");
  TRUSTRATE_EXPECTS(t1 > t0, "make_time_windows requires t1 > t0");
  out.clear();
  // Each start is computed as t0 + k*step, not by repeated `start += step`:
  // accumulated floating-point drift over long horizons would make late
  // window edges disagree with the t0 + k*step grid.
  for (std::size_t k = 0;; ++k) {
    const double start = t0 + static_cast<double>(k) * step;
    if (start >= t1) break;
    out.push_back({start, start + width});
    // A window already covering the remainder of [t0, t1) ends the tiling.
    if (start + width >= t1) break;
  }
}

std::vector<TimeWindow> make_time_windows(double t0, double t1, double width,
                                          double step) {
  std::vector<TimeWindow> out;
  make_time_windows_into(t0, t1, width, step, out);
  return out;
}

void make_count_windows_into(std::size_t n, std::size_t window, std::size_t step,
                             std::vector<IndexWindow>& out) {
  TRUSTRATE_EXPECTS(window >= 1 && step >= 1, "window and step must be >= 1");
  out.clear();
  for (std::size_t begin = 0; begin + window <= n; begin += step) {
    out.push_back({begin, begin + window});
  }
}

std::vector<IndexWindow> make_count_windows(std::size_t n, std::size_t window,
                                            std::size_t step) {
  std::vector<IndexWindow> out;
  make_count_windows_into(n, window, step, out);
  return out;
}

IndexWindow indices_in_window(const RatingSeries& series, const TimeWindow& w) {
  const auto lo = std::lower_bound(
      series.begin(), series.end(), w.start,
      [](const Rating& r, double t) { return r.time < t; });
  const auto hi = std::lower_bound(
      lo, series.end(), w.end,
      [](const Rating& r, double t) { return r.time < t; });
  return {static_cast<std::size_t>(lo - series.begin()),
          static_cast<std::size_t>(hi - series.begin())};
}

std::vector<double> values_in_window(const RatingSeries& series, const TimeWindow& w) {
  const IndexWindow idx = indices_in_window(series, w);
  std::vector<double> out;
  out.reserve(idx.size());
  for (std::size_t i = idx.begin; i < idx.end; ++i) out.push_back(series[i].value);
  return out;
}

}  // namespace trustrate::signal
