#include "signal/ar_incremental.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace trustrate::signal {

namespace {

constexpr double kTinyEnergy = 1e-14;  // same scale as signal/ar.cpp

// --------------------------------------------------------------- solvers
//
// Allocation-free mirrors of signal/matrix.cpp's solve_ldlt /
// solve_gaussian, specialized to the AR subsystem: solve A x = b with
// A(i, j) = c(i+1, j+1) and b(i) = −c(i+1, 0), where c is the
// (p+1)×(p+1) cross-product matrix. Tolerances and elimination order
// match the Matrix-based solvers so the degeneracy ladder takes the same
// decisions as fit_ar_covariance (the LDLT divides through stored pivot
// reciprocals, which perturbs factor entries by at most one extra
// rounding; the singularity checks themselves are unchanged).

double c_at(const double* c, std::size_t cp1, std::size_t i, std::size_t j) {
  return c[i * cp1 + j];
}

// The order parameter is taken as a template so the dispatcher below can
// instantiate the default order (4) with a compile-time constant — every
// loop fully unrolls and the index arithmetic folds away. The arithmetic
// sequence is identical either way, so the constant-order instantiations
// are bitwise interchangeable with the runtime-order one.
template <typename Order>
bool solve_ldlt_impl(const double* c, Order p, CovWorkspace& ws) {
  const std::size_t cp1 = p + 1;
  double* l = ws.ldlt_l.data();
  double* d = ws.ldlt_d.data();
  double* z = ws.coeffs.data();
  // Gaussian's rhs buffer is free here (the two solvers never run at the
  // same time); it stores the pivot reciprocals so each diagonal divides
  // once and every dependent entry multiplies — division is the only
  // multi-cycle-latency op in this 4×4-sized solve, and this drops the
  // count from p(p+1)/2 + p to p.
  double* inv_d = ws.rhs.data();

  double max_diag = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    max_diag = std::max(max_diag, std::fabs(c_at(c, cp1, i + 1, i + 1)));
  }
  const double tiny = std::max(max_diag, 1.0) * 1e-13;

  for (std::size_t j = 0; j < p; ++j) {
    double dj = c_at(c, cp1, j + 1, j + 1);
    for (std::size_t k = 0; k < j; ++k) dj -= l[j * p + k] * l[j * p + k] * d[k];
    if (dj < tiny) return false;  // not safely positive definite
    d[j] = dj;
    inv_d[j] = 1.0 / dj;
    l[j * p + j] = 1.0;
    for (std::size_t i = j + 1; i < p; ++i) {
      double acc = c_at(c, cp1, i + 1, j + 1);
      for (std::size_t k = 0; k < j; ++k) acc -= l[i * p + k] * l[j * p + k] * d[k];
      l[i * p + j] = acc * inv_d[j];
    }
  }

  for (std::size_t i = 0; i < p; ++i) z[i] = -c_at(c, cp1, i + 1, 0);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t k = 0; k < i; ++k) z[i] -= l[i * p + k] * z[k];
  }
  for (std::size_t i = 0; i < p; ++i) z[i] *= inv_d[i];
  for (std::size_t i = p; i-- > 0;) {
    for (std::size_t k = i + 1; k < p; ++k) z[i] -= l[k * p + i] * z[k];
  }
  return true;
}


bool solve_gaussian_ws(const double* c, std::size_t p, CovWorkspace& ws) {
  const std::size_t cp1 = p + 1;
  double* a = ws.gauss_a.data();
  double* b = ws.rhs.data();
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) a[i * p + j] = c_at(c, cp1, i + 1, j + 1);
    b[i] = -c_at(c, cp1, i + 1, 0);
  }

  double max_abs = 0.0;
  for (std::size_t i = 0; i < p * p; ++i) max_abs = std::max(max_abs, std::fabs(a[i]));
  const double tiny = std::max(max_abs, 1.0) * 1e-13;

  for (std::size_t col = 0; col < p; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < p; ++r) {
      if (std::fabs(a[r * p + col]) > std::fabs(a[pivot * p + col])) pivot = r;
    }
    if (std::fabs(a[pivot * p + col]) < tiny) return false;
    if (pivot != col) {
      for (std::size_t k = col; k < p; ++k) std::swap(a[pivot * p + k], a[col * p + k]);
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < p; ++r) {
      const double factor = a[r * p + col] / a[col * p + col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < p; ++k) a[r * p + k] -= factor * a[col * p + k];
      b[r] -= factor * b[col];
    }
  }
  double* x = ws.coeffs.data();
  for (std::size_t i = p; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < p; ++k) acc -= a[i * p + k] * x[k];
    x[i] = acc / a[i * p + i];
  }
  return true;
}

// ---------------------------------------------------------------- kernel
//
// The shared covariance fit: `v` points at the N window values, `cols[d]`
// at the window-local product column q_d (valid entries [d, N)). Both the
// incremental estimator and the from-scratch path land here, so their
// arithmetic — reduction shape, boundary-correction order, solver ladder —
// is identical instruction for instruction.

// One rung of the order-reduction ladder: build the c(i, j) matrix at
// order `pp`, solve, and fill `stats` on success. Returns true when the
// fit is settled (solved or degenerate), false when the normal equations
// were singular and the ladder should retry one order lower. Templated on
// the order's type so the kernel can instantiate the default order with a
// compile-time constant (fully unrolled corrections, solver and residual
// loops) while ladder retries and non-default orders share the same code
// with a runtime value — the arithmetic sequence, and hence every bit of
// the result, is the same either way.
template <typename Order>
bool cov_fit_try_order(const double* const* cols, std::size_t n, Order pp,
                       bool is_requested_order, double& window_energy,
                       CovFitStats& stats, CovWorkspace& ws) {
  const std::size_t cp1 = pp + 1;
  double* c = ws.c.data();

  // One fused multi-row reduction covers every matrix diagonal (S_d for
  // d = 0..p, all over the same index range), then O(1) boundary
  // corrections walk each diagonal outward: c(i, i+d) adds q_d(p−i) and
  // drops q_d(N−i) relative to c(i−1, i−1+d).
  for (std::size_t d = 0; d <= pp; ++d) ws.sum_ptrs[d] = cols[d] + pp;
  simd::sum_rows(ws.sum_ptrs.data(), cp1, n - pp, ws.diag_sums.data());

  if (is_requested_order) {
    // A window without signal energy has nothing to model (constant-zero
    // values); same early exit as fit_ar_covariance. q_0(u) = y(u)² is
    // already materialized and S_0 covers [p, n), so the full-window
    // energy is S_0 plus the first p squares — all terms non-negative,
    // and both fit arms share this exact sequence, so the degeneracy
    // decision is common to them by construction.
    double e = ws.diag_sums[0];
    for (std::size_t i = 0; i < pp; ++i) e += cols[0][i];
    window_energy = e;
    if (window_energy <= kTinyEnergy) {
      stats.degenerate = true;
      return true;
    }
  }

  for (std::size_t d = 0; d <= pp; ++d) {
    const double* q = cols[d];
    double acc = ws.diag_sums[d];
    c[0 * cp1 + d] = acc;
    c[d * cp1 + 0] = acc;
    for (std::size_t i = 1; i + d <= pp; ++i) {
      acc += q[pp - i];
      acc -= q[n - i];
      c[i * cp1 + (i + d)] = acc;
      c[(i + d) * cp1 + i] = acc;
    }
  }

  if (!solve_ldlt_impl(c, pp, ws) && !solve_gaussian_ws(c, pp, ws)) {
    return false;
  }

  stats.fitted_order = static_cast<int>(pp);
  // E_min = c(0,0) + Σ a_k c(0,k); guard cancellation below zero.
  double e = c[0];
  for (std::size_t k = 1; k <= pp; ++k) e += ws.coeffs[k - 1] * c[k];
  stats.residual_energy = std::max(e, 0.0);
  stats.reference_energy = c[0];
  return true;
}

CovFitStats cov_fit_kernel(const double* const* cols, std::size_t n,
                           int requested_order, CovWorkspace& ws) {
  CovFitStats stats;
  stats.requested_order = requested_order;
  stats.sample_count = n;

  double window_energy = 0.0;

  // Order-reduction ladder: singular normal equations at p retry at p−1
  // (a constant level makes the matrix rank-1; the lower-order model
  // describes the same signal exactly). The default order gets the
  // compile-time instantiation — it is the steady-state path.
  int p = requested_order;
  bool done;
  if (p == 4) {
    done = cov_fit_try_order(cols, n, std::integral_constant<std::size_t, 4>{},
                             true, window_energy, stats, ws);
  } else {
    done = cov_fit_try_order(cols, n, static_cast<std::size_t>(p), true,
                             window_energy, stats, ws);
  }
  for (--p; !done && p >= 1; --p) {
    done = cov_fit_try_order(cols, n, static_cast<std::size_t>(p), false,
                             window_energy, stats, ws);
  }
  if (done) return stats;

  // Even order 1 was singular: nothing is predictable; report full error.
  stats.fitted_order = 0;
  stats.reference_energy = window_energy;
  stats.residual_energy = window_energy;
  return stats;
}

}  // namespace

double CovFitStats::normalized_error() const {
  if (degenerate || reference_energy <= kTinyEnergy) return 0.0;
  return std::clamp(residual_energy / reference_energy, 0.0, 1.0);
}

void CovWorkspace::reserve(int order, std::size_t window_len) {
  if (order <= ready_order && window_len <= ready_len) return;
  // Size to the joint high-water marks so interleaved (order, length)
  // requests can never leave a buffer smaller than a skipped combination
  // would need.
  ready_order = std::max(ready_order, order);
  ready_len = std::max(ready_len, window_len);
  window_len = ready_len;
  const auto p = static_cast<std::size_t>(ready_order);
  if (c.size() < (p + 1) * (p + 1)) c.resize((p + 1) * (p + 1));
  if (ldlt_l.size() < p * p) ldlt_l.resize(p * p);
  if (ldlt_d.size() < p) ldlt_d.resize(p);
  if (gauss_a.size() < p * p) gauss_a.resize(p * p);
  if (rhs.size() < p) rhs.resize(p);
  if (coeffs.size() < p) coeffs.resize(p);
  if (col_ptrs.size() < p + 1) col_ptrs.resize(p + 1);
  if (sum_ptrs.size() < p + 1) sum_ptrs.resize(p + 1);
  if (diag_sums.size() < p + 1) diag_sums.resize(p + 1);
  if (window_len > 0 && fresh_cols.size() < (p + 1) * window_len) {
    fresh_cols.resize((p + 1) * window_len);
  }
}

CovFitStats fit_cov_scratch(std::span<const double> x, int order,
                            CovWorkspace& ws) {
  TRUSTRATE_EXPECTS(order >= 1, "AR order must be >= 1");
  TRUSTRATE_EXPECTS(x.size() >= 2 * static_cast<std::size_t>(order) + 1,
                    "covariance method needs x.size() >= 2*order + 1");
  const std::size_t n = x.size();
  const auto p = static_cast<std::size_t>(order);
  ws.reserve(order, n);
  // Rebuild every product column from the raw values — the "from scratch"
  // arm of the oracle. Column entries are single multiplies, so they equal
  // the incrementally maintained ones bit for bit.
  for (std::size_t d = 0; d <= p; ++d) {
    double* col = ws.fresh_cols.data() + d * n;
    if (d > 0) std::memset(col, 0, d * sizeof(double));
    simd::multiply(col + d, x.data() + d, x.data(), n - d);
    ws.col_ptrs[d] = col;
  }
  return cov_fit_kernel(ws.col_ptrs.data(), n, order, ws);
}

ArModel fit_ar_covariance_canonical(std::span<const double> x, int order) {
  CovWorkspace ws;
  const CovFitStats stats = fit_cov_scratch(x, order, ws);
  ArModel model;
  model.requested_order = order;
  model.sample_count = stats.sample_count;
  model.mean = 0.0;
  model.coeffs.assign(ws.coeffs.begin(),
                      ws.coeffs.begin() + stats.fitted_order);
  model.residual_energy = stats.residual_energy;
  model.reference_energy = stats.reference_energy;
  model.degenerate = stats.degenerate;
  model.normalized_error = stats.normalized_error();
  return model;
}

void SlidingCovarianceEstimator::begin_series(int order,
                                              std::size_t capacity_hint) {
  TRUSTRATE_EXPECTS(order >= 1, "AR order must be >= 1");
  const bool order_changed = order != order_;
  order_ = order;
  base_ = first_ = last_ = 0;
  if (order_changed && cap_ > 0) {
    // Row count depends on the order; re-shape the existing storage.
    const std::size_t keep = cap_;
    cap_ = 0;
    ensure_capacity(keep);
  }
  if (capacity_hint > cap_) ensure_capacity(capacity_hint);
  if (lag_ptrs_.size() < static_cast<std::size_t>(order_) + 1) {
    lag_ptrs_.resize(static_cast<std::size_t>(order_) + 1);
  }
}

void SlidingCovarianceEstimator::ensure_capacity(std::size_t needed) {
  const std::size_t rows = static_cast<std::size_t>(order_) + 2;
  std::size_t new_cap = std::max<std::size_t>(cap_ * 2, 64);
  while (new_cap < needed) new_cap *= 2;
  std::vector<double> grown(rows * new_cap, 0.0);
  const std::size_t live = last_ - first_;
  const std::size_t off = first_ - base_;
  for (std::size_t r = 0; r < rows && live > 0 && !rows_.empty(); ++r) {
    std::memcpy(grown.data() + r * new_cap, rows_.data() + r * cap_ + off,
                live * sizeof(double));
  }
  rows_ = std::move(grown);
  cap_ = new_cap;
  base_ = first_;
}

void SlidingCovarianceEstimator::advance(const RatingSeries& series,
                                         std::size_t first, std::size_t last) {
  TRUSTRATE_EXPECTS(first >= first_ && last >= last_ && first <= last,
                    "sliding windows must advance monotonically");
  TRUSTRATE_EXPECTS(last <= series.size(), "window end past the series");
  TRUSTRATE_EXPECTS(order_ >= 1, "begin_series must run before advance");
  first_ = first;
  if (first_ > last_) {
    // The window jumped past everything stored: nothing is retained, and
    // appends below rewrite the (stale) slots from scratch. Cross-window
    // lag products of the first `order_` new ratings come out garbage, but
    // fits only ever read q_d(g) with g − d inside the window, so they are
    // never consumed (same reason the fresh-column path zero-fills them).
    base_ = first_;
    last_ = first_;
  }

  if (last > base_ + cap_) {
    // Reclaim the evicted prefix in place — but only when the prefix is at
    // least as large as the live span, so each retained slot moves at most
    // once per buffer's worth of appends (amortized O(1) per rating). A
    // smaller prefix means the buffer is simply too tight for this
    // window/step ratio: grow instead, which settles the capacity near
    // twice the window size and makes compactions rare.
    const std::size_t shift = first_ - base_;
    const std::size_t live = last_ - first_;
    if (shift >= live && cap_ > 0) {
      const std::size_t rows = static_cast<std::size_t>(order_) + 2;
      for (std::size_t r = 0; r < rows; ++r) {
        std::memmove(rows_.data() + r * cap_, rows_.data() + r * cap_ + shift,
                     live * sizeof(double));
      }
      base_ = first_;
    }
    if (last > base_ + cap_) ensure_capacity(last - base_);
  }

  // q_d(g) = x(g) · x(g−d): one multiply per (rating, lag), computed
  // exactly once no matter how many windows cover the rating. The values
  // row is filled first (one strided gather out of the Rating structs),
  // then every product column reads from it contiguously — the compiler
  // vectorizes the multiply, and each entry is still the single correctly
  // rounded product of the same two series values the fresh-column path
  // computes. Slots with g < base_ + d are left unwritten: a fit only
  // reads q_d at window-local indices >= d, i.e. global g with
  // g − d >= first_ >= base_, and base_ / first_ only ever advance, so
  // those slots can never be consumed (the fresh-column path zero-fills
  // the corresponding window-local slots for the same reason).
  const auto p = static_cast<std::size_t>(order_);
  const std::size_t base = base_;
  double* values = rows_.data();
  for (std::size_t g = last_; g < last; ++g) values[g - base] = series[g].value;
  // Steady state appends the same global range to every column, so one
  // fused pass fills all p+1 of them (each new value loaded once). Only
  // the first ratings after begin_series or a jump-reset need the scalar
  // prefix below: column d starts at g = base_ + d because its first d
  // slots would need values older than the buffer base — and those slots
  // can never be consumed, since a fit only reads q_d at window-local
  // indices >= d, i.e. global g with g − d >= first_ >= base_, and base_ /
  // first_ only ever advance (the fresh-column path zero-fills the
  // corresponding slots for the same reason).
  const std::size_t fused_from = std::min(last, std::max(last_, base + p));
  for (std::size_t d = 0; d <= p; ++d) {
    double* qrow = rows_.data() + (1 + d) * cap_;
    lag_ptrs_[d] = qrow + (fused_from - base);
    for (std::size_t g = std::max(last_, base + d); g < fused_from; ++g) {
      qrow[g - base] = values[g - base] * values[g - base - d];
    }
  }
  if (fused_from < last) {
    simd::multiply_lagged(lag_ptrs_.data(), values + (fused_from - base),
                          p + 1, last - fused_from);
  }
  last_ = last;
}

CovFitStats SlidingCovarianceEstimator::fit(CovWorkspace& ws) const {
  const std::size_t n = last_ - first_;
  TRUSTRATE_EXPECTS(n >= 2 * static_cast<std::size_t>(order_) + 1,
                    "covariance method needs window size >= 2*order + 1");
  ws.reserve(order_, 0);
  const std::size_t off = first_ - base_;
  for (std::size_t d = 0; d <= static_cast<std::size_t>(order_); ++d) {
    ws.col_ptrs[d] = rows_.data() + (1 + d) * cap_ + off;
  }
  return cov_fit_kernel(ws.col_ptrs.data(), n, order_, ws);
}

}  // namespace trustrate::signal
