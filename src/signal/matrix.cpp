#include "signal/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trustrate::signal {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  TRUSTRATE_EXPECTS(x.size() == cols_, "multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::optional<std::vector<double>> solve_gaussian(Matrix a, std::vector<double> b) {
  TRUSTRATE_EXPECTS(a.rows() == a.cols(), "solve_gaussian: matrix must be square");
  TRUSTRATE_EXPECTS(a.rows() == b.size(), "solve_gaussian: size mismatch");
  const std::size_t n = a.rows();
  if (n == 0) return std::vector<double>{};

  // Scale-aware singularity threshold.
  double max_abs = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      max_abs = std::max(max_abs, std::fabs(a(r, c)));
    }
  }
  const double tiny = std::max(max_abs, 1.0) * 1e-13;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < tiny) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a(i, c) * x[c];
    x[i] = acc / a(i, i);
  }
  return x;
}

std::optional<std::vector<double>> solve_ldlt(const Matrix& a, std::span<const double> b) {
  TRUSTRATE_EXPECTS(a.rows() == a.cols(), "solve_ldlt: matrix must be square");
  TRUSTRATE_EXPECTS(a.rows() == b.size(), "solve_ldlt: size mismatch");
  const std::size_t n = a.rows();
  if (n == 0) return std::vector<double>{};

  Matrix l(n, n, 0.0);
  std::vector<double> d(n, 0.0);
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, std::fabs(a(i, i)));
  const double tiny = std::max(max_diag, 1.0) * 1e-13;

  for (std::size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= l(j, k) * l(j, k) * d[k];
    if (dj < tiny) return std::nullopt;  // not safely positive definite
    d[j] = dj;
    l(j, j) = 1.0;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k) * d[k];
      l(i, j) = acc / dj;
    }
  }

  // Forward solve L z = b.
  std::vector<double> z(b.begin(), b.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) z[i] -= l(i, k) * z[k];
  }
  // Diagonal solve D y = z.
  for (std::size_t i = 0; i < n; ++i) z[i] /= d[i];
  // Back solve L^T x = y.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t k = i + 1; k < n; ++k) z[i] -= l(k, i) * z[k];
  }
  return z;
}

}  // namespace trustrate::signal
