// Small dense linear algebra for the AR normal equations.
//
// Sizes here are the AR model order (~4-10), so simplicity and numerical
// robustness beat asymptotic cleverness.
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace trustrate::signal {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Matrix-vector product; requires x.size() == cols().
  std::vector<double> multiply(std::span<const double> x) const;

  /// True when the matrix is square and symmetric within `tol`.
  bool is_symmetric(double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Returns nullopt when A is (numerically) singular — an expected outcome
/// for degenerate windows (e.g. constant ratings), not an error.
std::optional<std::vector<double>> solve_gaussian(Matrix a, std::vector<double> b);

/// Solves A x = b for symmetric positive (semi-)definite A via LDL^T.
/// Returns nullopt on breakdown (non-positive pivot beyond tolerance), in
/// which case callers should fall back to solve_gaussian.
std::optional<std::vector<double>> solve_ldlt(const Matrix& a, std::span<const double> b);

}  // namespace trustrate::signal
