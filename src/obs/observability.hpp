// The observability handle threaded through the pipeline (ISSUE 5): a
// bundle of non-owning sink pointers. Default-constructed it is the null
// configuration — every instrumented site then reduces to a pointer test,
// and the pipeline's outputs are guaranteed bitwise-identical to an
// uninstrumented build (the out-of-band contract, DESIGN.md §11, enforced
// by the differential oracle running with instrumentation on and off).
//
// Ownership: the caller owns the registry and sinks; they must outlive
// every component the bundle is handed to. Components copy the bundle (it
// is three pointers) and resolve their metric instruments once.
#pragma once

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace trustrate::obs {

struct Observability {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  AuditSink* audit = nullptr;

  bool enabled() const {
    return metrics != nullptr || trace != nullptr || audit != nullptr;
  }
};

}  // namespace trustrate::obs
