// Tiny JSON string escaping shared by the trace and audit serializers.
#pragma once

#include <string>
#include <string_view>

namespace trustrate::obs {

/// Escapes `"` `\` and control characters for embedding in a JSON string.
std::string json_escape(std::string_view text);

}  // namespace trustrate::obs
