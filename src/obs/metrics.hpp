// Thread-safe metrics registry (ISSUE 5 tentpole): named counters, gauges,
// and fixed-bucket histograms with cheap relaxed-atomic hot-path updates,
// snapshot-able to Prometheus text exposition and JSON.
//
// Conventions (DESIGN.md §11):
//
//  * every metric is prefixed `trustrate_`; counters end in `_total`,
//    timing histograms end in `_seconds`;
//  * **counters and gauges carry only deterministic pipeline counts**
//    (ratings filtered, epochs closed, suspicious intervals, WAL records);
//    **histograms carry only wall-clock timings**. The split keeps the
//    reproducible signal (comparable across runs and platforms) cleanly
//    separated from the non-reproducible one, and the golden-file tests
//    (tests/observability_test.cpp) only pin the deterministic side.
//  * registration is idempotent: asking for an existing name returns the
//    existing instrument (a histogram keeps its original buckets).
//
// Hot-path cost: one relaxed atomic RMW per update, no locks. The registry
// mutex is taken only at registration and snapshot time, so components
// resolve their instruments once (at set_observability) and keep raw
// pointers; instrument addresses are stable for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace trustrate::obs {

/// Monotonic counter (deterministic pipeline counts only — see the file
/// comment). Relaxed atomics: updates never order anything.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge (deterministic instantaneous values: queue depths,
/// quarantine size).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (wall-clock timings only). Bucket i counts
/// observations <= bounds[i]; one implicit +Inf bucket catches the rest.
/// Cumulative counts are computed at snapshot time, so observe() touches
/// exactly one bucket counter plus the sum and count.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, one per bound plus the +Inf slot.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket bounds for `_seconds` histograms: 1 µs .. ~8 s in
/// power-of-4 steps (timings in this pipeline span WAL appends to full
/// epoch closes).
std::vector<double> default_seconds_buckets();

/// Named-instrument registry. All methods are thread-safe; returned
/// references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  /// `bounds` is used only on first registration; a later call with the
  /// same name returns the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = "");

  /// Prometheus text exposition (content-type text/plain; version=0.0.4):
  /// `# HELP` / `# TYPE` headers, `_bucket{le=...}` cumulative buckets,
  /// `_sum` / `_count` per histogram. Metric order is name-sorted, so the
  /// snapshot is deterministic given deterministic values.
  std::string prometheus() const;

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Counters/gauges (the deterministic side) are grouped apart from the
  /// timing histograms.
  std::string json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, Kind kind, std::string_view help);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace trustrate::obs
