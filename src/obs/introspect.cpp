#include "obs/introspect.hpp"

#include <cstdio>
#include <utility>

#include "obs/http.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace trustrate::obs {
namespace {

/// Shortest round-trippable decimal, matching the metrics JSON emitter.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, const std::string& v) {
  out += '"';
  out += key;
  out += "\":\"";
  out += json_escape(v);
  out += '"';
}

void append_kv(std::string& out, const char* key, bool v) {
  out += '"';
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

void append_queue(std::string& out, const char* key, const QueueProbe& q) {
  out += '"';
  out += key;
  out += "\":{";
  append_kv(out, "depth", q.depth);
  out += ',';
  append_kv(out, "high_water", q.high_water);
  out += ',';
  append_kv(out, "stalls", q.stalls);
  out += ',';
  append_kv(out, "capacity", q.capacity);
  out += '}';
}

bool all_shards_ok(const PipelineProbe& p) {
  for (const ShardProbe& s : p.shards) {
    if (s.health != ShardHealth::kOk) return false;
  }
  return true;
}

std::string overall_status(const PipelineProbe& p, const DurabilityProbe& d) {
  if (p.failed || (d.present && d.state == "failed")) return "failed";
  if (!all_shards_ok(p) || p.merge_stall_age > 0 ||
      (d.present && d.state != "durable")) {
    return "degraded";
  }
  return "ok";
}

void append_durability(std::string& out, const DurabilityProbe& d,
                       bool with_ages) {
  out += "\"durability\":{";
  append_kv(out, "present", d.present);
  if (d.present) {
    out += ',';
    append_kv(out, "state", d.state);
    out += ',';
    append_kv(out, "heals", d.heals);
    out += ',';
    append_kv(out, "failstops", d.failstops);
    if (with_ages) {
      out += ',';
      append_kv(out, "acknowledged", d.acknowledged);
      out += ',';
      append_kv(out, "durable_acknowledged", d.durable_acknowledged);
      out += ',';
      append_kv(out, "backlog_records", d.backlog_records);
      out += ',';
      append_kv(out, "last_checkpoint", d.last_checkpoint);
      out += ',';
      append_kv(out, "records_since_checkpoint", d.records_since_checkpoint);
      out += ',';
      append_kv(out, "wal_records", d.wal_records);
      out += ',';
      append_kv(out, "wal_segments", d.wal_segments);
      out += ',';
      append_kv(out, "active_segment_records", d.active_segment_records);
    }
    if (!d.last_failure.empty()) {
      out += ',';
      append_kv(out, "last_failure", d.last_failure);
    }
  }
  out += '}';
}

}  // namespace

const char* to_string(ShardHealth h) {
  switch (h) {
    case ShardHealth::kOk:
      return "ok";
    case ShardHealth::kSlow:
      return "slow";
    case ShardHealth::kStalled:
      return "stalled";
    case ShardHealth::kPoisoned:
      return "poisoned";
  }
  return "unknown";
}

std::string render_healthz(const PipelineProbe& p, const DurabilityProbe& d) {
  std::string out;
  out.reserve(256 + p.shards.size() * 128);
  out += '{';
  append_kv(out, "status", overall_status(p, d));
  out += ",\"pipeline\":{";
  append_kv(out, "mode", std::string(p.threaded ? "threaded" : "inline"));
  out += ',';
  append_kv(out, "failed", p.failed);
  if (p.failed) {
    out += ',';
    append_kv(out, "failure_kind", p.failure_kind);
    out += ',';
    append_kv(out, "failure_shard", std::uint64_t{p.failure_shard});
    out += ',';
    append_kv(out, "failure_message", p.failure_message);
  }
  out += ',';
  append_kv(out, "merge_lag", p.merge_lag);
  out += ',';
  append_kv(out, "merge_stall_age", p.merge_stall_age);
  out += ',';
  append_kv(out, "stall_budget", p.stall_budget);
  out += ",\"shards\":[";
  for (std::size_t k = 0; k < p.shards.size(); ++k) {
    const ShardProbe& s = p.shards[k];
    if (k != 0) out += ',';
    out += '{';
    append_kv(out, "shard", std::uint64_t{s.index});
    out += ',';
    append_kv(out, "state", std::string(to_string(s.health)));
    out += ',';
    append_kv(out, "heartbeat_age", s.heartbeat_age);
    out += ',';
    append_kv(out, "stall_age", s.stall_age);
    out += '}';
  }
  out += "]},";
  append_durability(out, d, /*with_ages=*/false);
  out += "}\n";
  return out;
}

std::string render_status(const PipelineProbe& p, const DurabilityProbe& d) {
  std::string out;
  out.reserve(512 + p.shards.size() * 256);
  out += "{\"epoch\":{";
  append_kv(out, "anchored", p.anchored);
  out += ",\"epoch_start\":";
  out += fmt_double(p.epoch_start);
  out += ",\"last_time\":";
  out += fmt_double(p.last_time);
  out += ',';
  append_kv(out, "cells_issued", p.cells_issued);
  out += ',';
  append_kv(out, "cells_merged", p.cells_merged);
  out += ',';
  append_kv(out, "merge_lag", p.merge_lag);
  out += ',';
  append_kv(out, "skipped_empty_epochs", p.skipped_empty_epochs);
  out += "},\"ingest\":{";
  append_kv(out, "submitted", p.submitted);
  out += ',';
  append_kv(out, "pending", p.pending);
  out += ',';
  append_kv(out, "buffered", p.buffered);
  out += "},\"shards\":[";
  for (std::size_t k = 0; k < p.shards.size(); ++k) {
    const ShardProbe& s = p.shards[k];
    if (k != 0) out += ',';
    out += '{';
    append_kv(out, "shard", std::uint64_t{s.index});
    out += ',';
    append_kv(out, "state", std::string(to_string(s.health)));
    out += ',';
    append_kv(out, "events_pushed", s.events_pushed);
    out += ',';
    append_kv(out, "events_processed", s.events_processed);
    out += ',';
    append_queue(out, "inbox", s.inbox);
    out += ',';
    append_queue(out, "outbox", s.outbox);
    out += ',';
    append_kv(out, "quarantine", s.quarantine_size);
    out += ',';
    append_kv(out, "skipped_cells", s.skipped_cells);
    out += '}';
  }
  out += "],";
  append_durability(out, d, /*with_ages=*/true);
  out += "}\n";
  return out;
}

void bind_introspection(ExpositionServer& server, MetricsRegistry* metrics,
                        std::function<PipelineProbe()> pipeline,
                        std::function<DurabilityProbe()> durability) {
  if (metrics != nullptr) {
    server.handle("/metrics", [metrics] {
      HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = metrics->prometheus();
      return r;
    });
  }
  server.handle("/healthz", [pipeline, durability] {
    const PipelineProbe p = pipeline ? pipeline() : PipelineProbe{};
    const DurabilityProbe d = durability ? durability() : DurabilityProbe{};
    HttpResponse r;
    r.content_type = "application/json";
    r.body = render_healthz(p, d);
    return r;
  });
  server.handle("/status", [pipeline = std::move(pipeline),
                            durability = std::move(durability)] {
    const PipelineProbe p = pipeline ? pipeline() : PipelineProbe{};
    const DurabilityProbe d = durability ? durability() : DurabilityProbe{};
    HttpResponse r;
    r.content_type = "application/json";
    r.body = render_status(p, d);
    return r;
  });
}

}  // namespace trustrate::obs
