#include "obs/json.hpp"

#include <cstdio>

namespace trustrate::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n";  break;
      case '\r': out += "\\r";  break;
      case '\t': out += "\\t";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace trustrate::obs
