#include "obs/audit.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace trustrate::obs {
namespace {

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_field(std::string& out, const char* key,
                  const std::optional<double>& v) {
  if (v.has_value()) {
    out += std::string(",\"") + key + "\":" + format_number(*v);
  }
}

}  // namespace

const char* to_string(AuditEventType type) {
  switch (type) {
    case AuditEventType::kRatingQuarantined:   return "rating_quarantined";
    case AuditEventType::kRatingFiltered:      return "rating_filtered";
    case AuditEventType::kSuspiciousInterval:  return "suspicious_interval";
    case AuditEventType::kSuspicionIncrement:  return "suspicion_increment";
    case AuditEventType::kTrustDemotion:       return "trust_demotion";
    case AuditEventType::kDegradedEpoch:       return "degraded_epoch";
    case AuditEventType::kObserverNotRestored: return "observer_not_restored";
    case AuditEventType::kWalTailTruncated:    return "wal_tail_truncated";
    case AuditEventType::kDurabilityDegraded:  return "durability_degraded";
    case AuditEventType::kDurabilityRecovering: return "durability_recovering";
    case AuditEventType::kDurabilityRestored:  return "durability_restored";
    case AuditEventType::kShardPoisoned:       return "shard_poisoned";
    case AuditEventType::kShardStalled:        return "shard_stalled";
    case AuditEventType::kPipelineFailstop:    return "pipeline_failstop";
    case AuditEventType::kPipelineHealed:      return "pipeline_healed";
  }
  return "unknown";
}

std::string to_jsonl(const AuditEvent& event) {
  std::string out =
      std::string("{\"event\":\"") + to_string(event.type) + '"';
  if (event.epoch != 0) out += ",\"epoch\":" + std::to_string(event.epoch);
  if (event.rater.has_value()) {
    out += ",\"rater\":" + std::to_string(*event.rater);
  }
  if (event.product.has_value()) {
    out += ",\"product\":" + std::to_string(*event.product);
  }
  append_field(out, "window_start", event.window_start);
  append_field(out, "window_end", event.window_end);
  append_field(out, "model_error", event.model_error);
  append_field(out, "threshold", event.threshold);
  append_field(out, "value", event.value);
  if (!event.detail.empty()) {
    out += ",\"detail\":\"" + json_escape(event.detail) + '"';
  }
  out += '}';
  return out;
}

MemoryAuditSink::MemoryAuditSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void MemoryAuditSink::record(const AuditEvent& event) {
  std::lock_guard lock(mutex_);
  ++recorded_;
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<AuditEvent> MemoryAuditSink::snapshot() const {
  std::lock_guard lock(mutex_);
  return {events_.begin(), events_.end()};
}

std::vector<AuditEvent> MemoryAuditSink::of_type(AuditEventType type) const {
  std::lock_guard lock(mutex_);
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::uint64_t MemoryAuditSink::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::uint64_t MemoryAuditSink::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void JsonlAuditSink::record(const AuditEvent& event) {
  const std::string line = to_jsonl(event);
  std::lock_guard lock(mutex_);
  out_ << line << '\n';
}

}  // namespace trustrate::obs
