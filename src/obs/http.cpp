#include "obs/http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <utility>

namespace trustrate::obs {
namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

std::string render_response(const HttpResponse& r) {
  std::string out;
  out.reserve(r.body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += reason_phrase(r.status);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n";
  if (r.status == 405) out += "Allow: GET\r\n";
  out += "\r\n";
  out += r.body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads until the end of the request head (CRLFCRLF) or the byte cap.
/// Returns false on timeout/disconnect/overflow.
bool read_request_head(int fd, std::size_t cap, std::string& head) {
  char buf[1024];
  while (head.size() < cap) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout or error
    }
    if (n == 0) return false;  // peer closed before a full request line
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;  // head overflow
}

/// Splits "GET /path HTTP/1.1" out of the request head. Returns false on
/// anything that is not a parseable request line.
bool parse_request_line(const std::string& head, std::string& method,
                        std::string& path) {
  const std::size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  if (line.compare(sp2 + 1, 5, "HTTP/") != 0) return false;
  method = line.substr(0, sp1);
  path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Drop a query string: the endpoints take no parameters.
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  return !path.empty() && path.front() == '/';
}

}  // namespace

ExpositionServer::ExpositionServer(HttpServerOptions options)
    : options_(options) {}

ExpositionServer::~ExpositionServer() { stop(); }

void ExpositionServer::handle(std::string path, HttpHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

bool ExpositionServer::start() {
  if (running()) return true;
  error_.clear();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, options_.backlog) < 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ExpositionServer::stop() {
  if (!thread_.joinable()) return;
  stop_requested_.store(true, std::memory_order_release);
  thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void ExpositionServer::serve_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket is gone; nothing left to serve
    }
    if (ready == 0) continue;  // timeout: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

void ExpositionServer::serve_connection(int fd) {
  timeval tv{};
  tv.tv_sec = options_.recv_timeout_ms / 1000;
  tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  std::string head;
  HttpResponse response;
  std::string method;
  std::string path;
  if (!read_request_head(fd, options_.max_request_bytes, head) ||
      !parse_request_line(head, method, path)) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (method != "GET") {
    response = {405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    const auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      response = {404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      try {
        response = it->second();
      } catch (const std::exception& e) {
        response = {500, "text/plain; charset=utf-8",
                    std::string("handler error: ") + e.what() + "\n"};
      } catch (...) {
        response = {500, "text/plain; charset=utf-8", "handler error\n"};
      }
    }
  }
  send_all(fd, render_response(response));
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace trustrate::obs
