// Dependency-free HTTP/1.1 exposition server (ISSUE 10 tentpole): the
// read-side front door for /metrics, /healthz and /status. Deliberately
// minimal — a blocking-accept loop on its own thread, one connection at a
// time, GET-only — because the payloads are small snapshots and the
// callers are scrapers, not browsers. The design goals, in order:
//
//   1. Zero effect on the pipeline. Handlers run on the server thread and
//      may only touch thread-safe surfaces (MetricsRegistry snapshots,
//      the probe() structs from obs/introspect.hpp). The on-vs-off digest
//      oracle in tests/introspection_test.cpp pins this.
//   2. Clean shutdown. The accept loop polls the listening socket with a
//      short timeout and re-checks a stop flag, so stop() (or the
//      destructor) always joins promptly — no half-closed-socket games.
//   3. Bounded everything: request size, per-connection recv timeout,
//      accept backlog. A malformed or hostile client gets a 4xx and a
//      closed socket, never a wedged server.
//
// The server binds 127.0.0.1 only — this is an operator introspection
// surface, not a public API. Port 0 requests an ephemeral port; read the
// chosen one back with port().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace trustrate::obs {

/// What a handler returns. `status` must be a plain HTTP status code the
/// server knows a reason phrase for (200/400/404/405/500).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Endpoint callback, invoked on the server thread for each GET. Must be
/// safe to call concurrently with the pipeline's write path. A throwing
/// handler yields a 500 with the exception text.
using HttpHandler = std::function<HttpResponse()>;

struct HttpServerOptions {
  /// TCP port; 0 picks an ephemeral port (read back via port()).
  std::uint16_t port = 0;
  /// listen(2) backlog; pending connections beyond it are kernel-refused.
  int backlog = 16;
  /// Request-head cap; anything longer is answered 400 and dropped.
  std::size_t max_request_bytes = 8192;
  /// Per-connection recv timeout in milliseconds (bounds slow-loris).
  long recv_timeout_ms = 2000;
};

/// Blocking-accept exposition server. Lifecycle: construct, handle() the
/// endpoints, start(), scrape, stop() (idempotent; the destructor calls
/// it). start() after stop() restarts the listener — the tests exercise
/// this explicitly. handle() must not be called while running.
class ExpositionServer {
 public:
  explicit ExpositionServer(HttpServerOptions options = {});
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Registers `handler` for an exact-match GET `path` ("/metrics").
  /// Re-registering a path replaces the handler.
  void handle(std::string path, HttpHandler handler);

  /// Opens the socket and spawns the accept thread. Returns false (with
  /// error() set) when the bind/listen fails — e.g. the port is taken.
  bool start();

  /// Stops accepting, joins the server thread. Safe to call twice.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port after a successful start() (resolves port 0 requests).
  std::uint16_t port() const { return bound_port_; }

  /// Human-readable reason for the last start() failure.
  const std::string& error() const { return error_; }

  /// Total requests answered (any status) since construction.
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void serve_connection(int fd);

  HttpServerOptions options_;
  std::map<std::string, HttpHandler> handlers_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string error_;
};

}  // namespace trustrate::obs
