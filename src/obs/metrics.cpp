#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace trustrate::obs {
namespace {

/// Shortest round-trip-ish rendering; deterministic for equal doubles.
std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  TRUSTRATE_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bucket bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto slot = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> default_seconds_buckets() {
  // 1 µs .. ~8.6 s in power-of-4 steps (12 finite buckets + implicit +Inf).
  std::vector<double> bounds;
  double b = 1e-6;
  for (int i = 0; i < 12; ++i) {
    bounds.push_back(b);
    b *= 4.0;
  }
  return bounds;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               Kind kind,
                                               std::string_view help) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    TRUSTRATE_EXPECTS(it->second.kind == kind,
                      "metric re-registered with a different kind");
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = std::string(help);
  return entries_.emplace(std::string(name), std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name, Kind::kHistogram, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

std::string MetricsRegistry::prometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  // Labeled series ("name{shard=\"0\"}") share one metric family; HELP and
  // TYPE headers are emitted once per family, not once per series. The
  // sorted map keeps a family's series adjacent, so tracking the previous
  // family name is enough. Unlabeled names are their own family and render
  // exactly as before.
  std::string last_family;
  for (const auto& [name, e] : entries_) {
    const std::string family = name.substr(0, name.find('{'));
    if (family != last_family) {
      if (!e.help.empty()) out += "# HELP " + family + ' ' + e.help + '\n';
      switch (e.kind) {
        case Kind::kCounter:
          out += "# TYPE " + family + " counter\n";
          break;
        case Kind::kGauge:
          out += "# TYPE " + family + " gauge\n";
          break;
        case Kind::kHistogram:
          out += "# TYPE " + family + " histogram\n";
          break;
      }
      last_family = family;
    }
    switch (e.kind) {
      case Kind::kCounter:
        out += name + ' ' + std::to_string(e.counter->value()) + '\n';
        break;
      case Kind::kGauge:
        out += name + ' ' + format_number(e.gauge->value()) + '\n';
        break;
      case Kind::kHistogram: {
        const auto counts = e.histogram->bucket_counts();
        const auto& bounds = e.histogram->bounds();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          out += name + "_bucket{le=\"" + format_number(bounds[i]) + "\"} " +
                 std::to_string(cumulative) + '\n';
        }
        cumulative += counts[bounds.size()];
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               '\n';
        out += name + "_sum " + format_number(e.histogram->sum()) + '\n';
        // _count must equal the +Inf cumulative bucket per the exposition
        // format; deriving it from the same per-bucket loads (rather than
        // the separate count_ cell) keeps a snapshot torn by a concurrent
        // observe() internally consistent.
        out += name + "_count " + std::to_string(cumulative) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::lock_guard lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ',';
        counters += '"' + name + "\":" + std::to_string(e.counter->value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ',';
        gauges += '"' + name + "\":" + format_number(e.gauge->value());
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ',';
        const auto counts = e.histogram->bucket_counts();
        std::string bounds_json, counts_json;
        for (const double b : e.histogram->bounds()) {
          if (!bounds_json.empty()) bounds_json += ',';
          bounds_json += format_number(b);
        }
        for (const std::uint64_t c : counts) {
          if (!counts_json.empty()) counts_json += ',';
          counts_json += std::to_string(c);
        }
        histograms += '"' + name + "\":{\"bounds\":[" + bounds_json +
                      "],\"buckets\":[" + counts_json +
                      "],\"sum\":" + format_number(e.histogram->sum()) +
                      ",\"count\":" + std::to_string(e.histogram->count()) +
                      '}';
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

}  // namespace trustrate::obs
