#include "obs/trace.hpp"

#include "obs/json.hpp"

namespace trustrate::obs {

std::string to_jsonl(const TraceSpan& span) {
  std::string out = "{\"span\":\"" + json_escape(span.name) +
                    "\",\"start_ns\":" + std::to_string(span.start_ns) +
                    ",\"duration_ns\":" + std::to_string(span.duration_ns);
  if (span.epoch != 0) out += ",\"epoch\":" + std::to_string(span.epoch);
  if (span.id >= 0) out += ",\"id\":" + std::to_string(span.id);
  if (span.causal != 0) out += ",\"causal\":" + std::to_string(span.causal);
  if (!span.detail.empty()) {
    out += ",\"detail\":\"" + json_escape(span.detail) + '"';
  }
  out += '}';
  return out;
}

RingBufferTraceSink::RingBufferTraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RingBufferTraceSink::record(const TraceSpan& span) {
  std::lock_guard lock(mutex_);
  ++recorded_;
  if (spans_.size() == capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(span);
}

std::vector<TraceSpan> RingBufferTraceSink::snapshot() const {
  std::lock_guard lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

std::uint64_t RingBufferTraceSink::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::uint64_t RingBufferTraceSink::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void JsonlTraceSink::record(const TraceSpan& span) {
  const std::string line = to_jsonl(span);
  std::lock_guard lock(mutex_);
  out_ << line << '\n';
}

}  // namespace trustrate::obs
