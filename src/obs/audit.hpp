// Structured detection audit log (ISSUE 5 tentpole): one event per
// consequential pipeline decision, with enough fields to reconstruct the
// paper's Procedure 1/2 reasoning for any rater — the operator-facing
// requirement BIRDNEST (Hooi et al.) and Allahbakhsh et al.'s collusion-
// querying work both stress: a human must be able to ask *which* evidence
// flagged *whom*.
//
// Event inventory (emitted by core/streaming, core/system, core/durable):
//
//   rating_quarantined     a submission was dead-lettered (late/malformed)
//   rating_filtered        the beta filter removed a rating (f_i evidence)
//   suspicious_interval    Procedure 1 opened a suspicious window run
//                          (window bounds, model error e(k), threshold)
//   suspicion_increment    a rater's C(i) grew this epoch (soft evidence)
//   trust_demotion         a Procedure-2 update moved a rater's trust from
//                          >= the malicious threshold to below it
//   degraded_epoch         an epoch fell back to the beta-filter-only path
//   observer_not_restored  first epoch close after a checkpoint restore
//                          found no epoch observer re-attached
//   wal_tail_truncated     recovery cut a torn tail off the WAL
//   shard_poisoned         a shard (or merge) worker threw; supervision
//                          contained it and fail-stopped the pipeline
//   shard_stalled          the watchdog saw a non-empty inbox make no
//                          progress for its tick budget
//   pipeline_failstop      a ShardFailure was surfaced with no heal left
//   pipeline_healed        the durable front-end rebuilt the pipeline from
//                          checkpoint + WAL after a ShardFailure
//
// Events are **deterministic**: no wall-clock fields, and emitters order
// same-epoch events canonically (by rater / product / window position), so
// two runs of the same stream produce byte-identical audit logs — the
// JSONL output is golden-testable and diffable across runs. Wall-clock
// belongs to tracing (obs/trace.hpp).
//
// Sinks must be thread-safe (same contract as TraceSink).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace trustrate::obs {

enum class AuditEventType : std::uint8_t {
  kRatingQuarantined = 0,
  kRatingFiltered,
  kSuspiciousInterval,
  kSuspicionIncrement,
  kTrustDemotion,
  kDegradedEpoch,
  kObserverNotRestored,
  kWalTailTruncated,
  /// Persistence-degradation ladder transitions (DESIGN.md §12): the
  /// durable stream lost its WAL (environmental fault persisted past the
  /// retry budget), is probing/replaying to get it back, or got it back.
  kDurabilityDegraded,
  kDurabilityRecovering,
  kDurabilityRestored,
  /// Shard-supervision transitions (DESIGN.md §15): a shard worker threw
  /// (poisoned) or stopped making progress under the watchdog (stalled);
  /// the pipeline then either fail-stopped with a structured ShardFailure
  /// or was healed by the durable front-end from checkpoint + WAL.
  kShardPoisoned,
  kShardStalled,
  kPipelineFailstop,
  kPipelineHealed,
};

const char* to_string(AuditEventType type);

/// One audit event. `epoch` is the 1-based pipeline epoch ordinal (0 when
/// the decision is not tied to an epoch); optional fields are present
/// exactly when meaningful for the event type.
struct AuditEvent {
  AuditEventType type = AuditEventType::kRatingQuarantined;
  std::uint64_t epoch = 0;
  std::optional<RaterId> rater;
  std::optional<ProductId> product;
  std::optional<double> window_start;  ///< suspicious window [start, end)
  std::optional<double> window_end;
  std::optional<double> model_error;   ///< e(k) that tripped the threshold
  std::optional<double> threshold;
  std::optional<double> value;  ///< C(i) increment / new trust / byte count
  std::string detail;
};

/// One event as a JSON line: {"event":...,"epoch":...,...}. Field order is
/// fixed (the declaration order above), values are rendered with %.17g —
/// byte-stable for equal doubles.
std::string to_jsonl(const AuditEvent& event);

class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void record(const AuditEvent& event) = 0;
};

/// Bounded in-memory sink: keeps the newest `capacity` events plus a total
/// count. The in-process default for tests and interactive inspection.
class MemoryAuditSink : public AuditSink {
 public:
  explicit MemoryAuditSink(std::size_t capacity = 65536);

  void record(const AuditEvent& event) override;

  std::vector<AuditEvent> snapshot() const;
  /// Newest-last events of one type.
  std::vector<AuditEvent> of_type(AuditEventType type) const;
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<AuditEvent> events_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Appends one JSON line per event to a caller-owned stream. The stream
/// must outlive the sink.
class JsonlAuditSink : public AuditSink {
 public:
  explicit JsonlAuditSink(std::ostream& out) : out_(out) {}

  void record(const AuditEvent& event) override;

 private:
  std::mutex mutex_;
  std::ostream& out_;
};

}  // namespace trustrate::obs
