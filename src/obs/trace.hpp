// Pipeline tracing (ISSUE 5 tentpole): per-epoch stage spans — ingest
// release, beta filter, AR detect, merge/aggregation, trust update — plus
// durable-layer spans (WAL fsync, checkpoint write, recovery ladder),
// recorded through a pluggable TraceSink.
//
// Spans carry wall-clock timings and are therefore *not* deterministic;
// the deterministic pipeline counts live in obs/metrics.hpp and the
// decision trail in obs/audit.hpp (DESIGN.md §11). A null sink costs one
// pointer test per instrumented site; with a sink attached the only extra
// work is two steady_clock reads and one record() call, none of which
// touches pipeline state — oracle digests are bitwise-identical either way.
//
// Sinks must be thread-safe: the epoch engine records filter/detect spans
// from its worker threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace trustrate::obs {

/// One completed span. `epoch` is the 1-based pipeline epoch ordinal (0
/// when the span is not tied to an epoch); `id` is a product/rater/record
/// identifier when one applies (-1 otherwise). `causal` is the causal ID
/// (ISSUE 10): the 1-based global submission ordinal of the newest rating
/// this span covers, threaded from ingest classification through the
/// shard ring, epoch close, and merge — 0 when the span carries none.
/// Stage spans with a causal range put "causal=[lo,hi]" in `detail`.
struct TraceSpan {
  std::string name;
  std::uint64_t start_ns = 0;  ///< steady-clock time at span start
  std::uint64_t duration_ns = 0;
  std::uint64_t epoch = 0;
  std::int64_t id = -1;
  std::uint64_t causal = 0;
  std::string detail;  ///< free-form attribute ("fsync=epoch", "lsn=42", ...)
};

/// One span as a JSON line (the JSONL sink's format, exposed for tests).
std::string to_jsonl(const TraceSpan& span);

/// Span consumer. Implementations must be safe for concurrent record()
/// calls from multiple threads.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceSpan& span) = 0;
};

/// Fixed-capacity in-memory ring: keeps the newest `capacity` spans,
/// counting what it had to drop. The in-process default — attach, run,
/// drain for inspection.
class RingBufferTraceSink : public TraceSink {
 public:
  explicit RingBufferTraceSink(std::size_t capacity = 4096);

  void record(const TraceSpan& span) override;

  /// Newest-last copy of the buffered spans.
  std::vector<TraceSpan> snapshot() const;
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<TraceSpan> spans_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Writes one JSON line per span to a caller-owned stream (file sink for
/// offline analysis). The stream must outlive the sink.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}

  void record(const TraceSpan& span) override;

 private:
  std::mutex mutex_;
  std::ostream& out_;
};

/// Steady-clock nanoseconds (monotonic within the process).
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII span: times its scope and records on destruction. With a null sink
/// the constructor is a pointer test and the clock is never read.
class SpanTimer {
 public:
  SpanTimer(TraceSink* sink, const char* name, std::uint64_t epoch = 0,
            std::int64_t id = -1)
      : sink_(sink), name_(name), epoch_(epoch), id_(id) {
    if (sink_ != nullptr) start_ns_ = monotonic_ns();
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Attribute attached to the span at record time (no-op with null sink).
  void set_detail(std::string detail) {
    if (sink_ != nullptr) detail_ = std::move(detail);
  }

  /// Causal ID attached to the span at record time (no-op with null sink).
  void set_causal(std::uint64_t causal) {
    if (sink_ != nullptr) causal_ = causal;
  }

  ~SpanTimer() {
    if (sink_ == nullptr) return;
    TraceSpan span;
    span.name = name_;
    span.start_ns = start_ns_;
    span.duration_ns = monotonic_ns() - start_ns_;
    span.epoch = epoch_;
    span.id = id_;
    span.causal = causal_;
    span.detail = std::move(detail_);
    sink_->record(span);
  }

 private:
  TraceSink* sink_;
  const char* name_;
  std::uint64_t epoch_;
  std::int64_t id_;
  std::uint64_t causal_ = 0;
  std::uint64_t start_ns_ = 0;
  std::string detail_;
};

}  // namespace trustrate::obs
