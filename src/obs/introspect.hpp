// Introspection probes (ISSUE 10 tentpole): plain-data snapshots of the
// live pipeline's supervision and backpressure state, plus deterministic
// JSON renderers for the /healthz and /status endpoints.
//
// Layering: obs cannot depend on core (core links obs), so the structs
// here are dependency-free data bags. The producers live upstream —
// `ShardedRatingSystem::probe()` fills a PipelineProbe,
// `DurableStream::probe()` / `ShardedDurableStream::probe()` fill a
// DurabilityProbe — and the endpoint binder below takes std::function
// providers so any combination of layers can be exposed.
//
// Thread-safety contract for providers: they are invoked on the HTTP
// server thread *while the pipeline ingests*, so they must read only
// relaxed/acquire atomics or take uncontended snapshot locks. They must
// never call quiesce(), never throw on a failed pipeline, and never touch
// coordinator- or worker-owned non-atomic state. The probes are
// intentionally approximate: a scrape racing an ingest batch sees some
// consistent-enough recent past, not a linearizable cut.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace trustrate::obs {

class ExpositionServer;
class MetricsRegistry;

/// One SPSC ring's occupancy telemetry (see SpscQueue's accessors).
struct QueueProbe {
  std::uint64_t depth = 0;       ///< approximate occupancy now
  std::uint64_t high_water = 0;  ///< max producer-observed occupancy
  std::uint64_t stalls = 0;      ///< failed pushes against a full ring
  std::uint64_t capacity = 0;
};

/// Watchdog-derived shard health, mirroring DESIGN.md §15's taxonomy.
enum class ShardHealth : std::uint8_t {
  kOk = 0,
  kSlow,      ///< watchdog sees no progress, budget not yet exhausted
  kStalled,   ///< watchdog exhausted the stall budget (abort requested)
  kPoisoned,  ///< worker failure contained; pipeline failed
};

const char* to_string(ShardHealth h);

/// One shard's supervision + backpressure snapshot.
struct ShardProbe {
  std::size_t index = 0;
  ShardHealth health = ShardHealth::kOk;
  bool poisoned = false;
  bool abort_requested = false;
  std::uint64_t events_pushed = 0;
  std::uint64_t events_processed = 0;
  /// Heartbeat minus processed: 0 between events, 1 mid-event (the
  /// watchdog's mid-event/between-events diagnostic).
  std::uint64_t heartbeat_age = 0;
  /// Coordinator wait-ticks since this shard last made progress.
  std::uint64_t stall_age = 0;
  QueueProbe inbox;
  QueueProbe outbox;
  std::uint64_t quarantine_size = 0;  ///< dead-letter occupancy
  std::uint64_t skipped_cells = 0;
};

/// Whole-pipeline snapshot: epoch cursor, merge progress, failure latch.
struct PipelineProbe {
  bool threaded = false;
  bool failed = false;
  std::string failure_kind;  ///< "poisoned shard"/"stalled shard"/...
  std::size_t failure_shard = 0;
  std::string failure_message;
  std::uint64_t submitted = 0;
  std::uint64_t pending = 0;   ///< ratings routed but not yet in a cell
  std::uint64_t buffered = 0;  ///< reorder-buffer occupancy
  bool anchored = false;
  double epoch_start = 0.0;
  double last_time = 0.0;
  std::uint64_t cells_issued = 0;
  std::uint64_t cells_merged = 0;  ///< == epochs closed (1:1 by design)
  std::uint64_t merge_lag = 0;     ///< cells issued - cells merged
  std::uint64_t merge_stall_age = 0;
  std::uint64_t skipped_empty_epochs = 0;
  std::uint64_t stall_budget = 0;  ///< SupervisionOptions::stall_ticks
  std::vector<ShardProbe> shards;
};

/// Durability-layer snapshot (PR 6 ladder + PR 9 heal counters). "Ages"
/// are measured in records — deterministic and clock-free: how far the
/// WAL has run past the newest checkpoint, and how full the active
/// segment is.
struct DurabilityProbe {
  bool present = false;  ///< false ⇒ no durable layer attached
  std::string state;     ///< "durable"/"degraded"/"recovering"/"failed"
  std::uint64_t acknowledged = 0;
  std::uint64_t durable_acknowledged = 0;
  std::uint64_t backlog_records = 0;
  std::uint64_t last_checkpoint = 0;  ///< LSN (unsharded) or ordinal seq
  std::uint64_t records_since_checkpoint = 0;  ///< checkpoint age
  std::uint64_t wal_records = 0;               ///< total across shards
  std::uint64_t active_segment_records = 0;    ///< max across shards
  std::uint64_t wal_segments = 0;              ///< segment files on disk
  std::uint64_t heals = 0;
  std::uint64_t failstops = 0;
  std::string last_failure;
};

/// /healthz body: overall status ("ok"/"degraded"/"failed") derived from
/// the probes, per-shard watchdog verdicts, heal counters, ladder state.
std::string render_healthz(const PipelineProbe& pipeline,
                           const DurabilityProbe& durability);

/// /status body: the full JSON snapshot (epoch cursor, per-shard queue
/// depth/high-water/stalls, quarantine occupancy, WAL/checkpoint ages).
std::string render_status(const PipelineProbe& pipeline,
                          const DurabilityProbe& durability);

/// Wires the conventional endpoints onto `server`: /metrics (Prometheus
/// text from `metrics`, skipped when null), /healthz and /status from the
/// probe providers (a null provider reports an idle pipeline / absent
/// durable layer). Call before server.start().
void bind_introspection(ExpositionServer& server, MetricsRegistry* metrics,
                        std::function<PipelineProbe()> pipeline,
                        std::function<DurabilityProbe()> durability = {});

}  // namespace trustrate::obs
