// Per-rater behavioral profiles: handling the paper's *individual* unfair
// ratings (§II-B) — dispositional bias ("personality/habit"), carelessness,
// and randomness — which the collaborative-rating machinery deliberately
// ignores (individual high and low ratings cancel; extension beyond the
// paper's implementation).
//
// A profile accumulates, per rater, the deviation of each of their ratings
// from the consensus of the product they rated. Longitudinally this
// separates:
//   * dispositional raters — consistent positive/negative mean deviation
//     (the grade-inflater, the curmudgeon),
//   * careless raters      — near-zero mean deviation, high spread,
//   * normal raters        — near-zero mean deviation, low spread.
//
// The estimated dispositional bias can then be *subtracted* before
// aggregation (debiasing), which recovers accuracy that down-weighting
// alone cannot: a consistent curmudgeon carries real information once
// their offset is removed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace trustrate::trust {

/// Longitudinal deviation statistics for one rater.
struct RaterProfile {
  std::size_t ratings = 0;
  double deviation_sum = 0.0;     ///< Σ (rating − product consensus)
  double deviation_sq_sum = 0.0;  ///< Σ (rating − consensus)²

  /// Mean deviation from consensus — the dispositional-bias estimate.
  double bias() const;

  /// Standard deviation of the deviations — the noisiness estimate.
  double spread() const;

  void add(double deviation);
};

/// Behavioral classification thresholds.
struct ProfileClassifierConfig {
  double bias_threshold = 0.08;    ///< |bias| above this = dispositional
  double spread_threshold = 0.22;  ///< spread above this = careless
  std::size_t min_ratings = 8;     ///< below this a rater is unclassified
};

enum class RaterBehavior : std::uint8_t {
  kUnclassified,   ///< not enough evidence
  kNormal,
  kBiasedHigh,     ///< dispositional grade-inflater
  kBiasedLow,      ///< dispositional curmudgeon
  kCareless,       ///< unbiased but noisy
};

/// Tracks profiles across products.
class RaterProfileStore {
 public:
  explicit RaterProfileStore(ProfileClassifierConfig config = {});

  /// Folds one product's rating series into the profiles: each rating's
  /// deviation from the series' leave-one-out mean is recorded against its
  /// rater. Series with fewer than 2 ratings are ignored (no consensus).
  void observe_product(const RatingSeries& ratings);

  /// Classification of one rater under the configured thresholds.
  RaterBehavior classify(RaterId id) const;

  /// Dispositional-bias estimate; 0 for unknown/unclassified raters, so
  /// debiasing is always safe to apply.
  double bias_of(RaterId id) const;

  /// Returns `value − bias_of(rater)` clamped to [0, 1]: the debiased
  /// rating to hand to an aggregator.
  double debias(RaterId id, double value) const;

  const RaterProfile* find(RaterId id) const;
  std::size_t size() const { return profiles_.size(); }

 private:
  ProfileClassifierConfig config_;
  std::unordered_map<RaterId, RaterProfile> profiles_;
};

}  // namespace trustrate::trust
