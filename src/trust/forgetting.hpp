// Forgetting schemes for trust records (paper §III-B: the Record
// Maintenance module; the schemes follow ref. [8]).
//
// Two families:
//  * Exponential fading — TrustRecord::fade(lambda): every epoch both
//    evidence counters shrink by lambda, so the effective memory is
//    1/(1-lambda) epochs. Built into TrustRecord; this header adds the
//    helpers for reasoning about it.
//  * Sliding window — WindowedTrustRecord: only the last `window` epochs
//    of evidence count, each at full weight. Sharper cutoff; an attacker
//    who pauses for `window` epochs is forgiven completely, whereas
//    exponential fading never fully forgets.
#pragma once

#include <cstddef>
#include <deque>

#include "trust/record.hpp"

namespace trustrate::trust {

/// Effective number of epochs an exponentially-faded record remembers
/// (the mass-weighted memory 1/(1-lambda)); infinity-like large value for
/// lambda == 1. Useful when translating between the two schemes.
double effective_memory_epochs(double lambda);

/// The fading factor whose effective memory is `epochs` (inverse of
/// effective_memory_epochs). Requires epochs >= 1.
double lambda_for_memory(double epochs);

/// Beta trust over a sliding window of per-epoch evidence.
class WindowedTrustRecord {
 public:
  /// Keeps the most recent `window` epochs of evidence. window >= 1.
  explicit WindowedTrustRecord(std::size_t window);

  /// Appends one epoch's evidence (computed per Procedure 2) and drops the
  /// epoch that falls off the window.
  void add_epoch(double successes, double failures);

  /// Beta-mean trust over the retained evidence; 0.5 with no evidence.
  double trust() const;

  double successes() const { return successes_; }
  double failures() const { return failures_; }
  std::size_t epochs_retained() const { return epochs_.size(); }

 private:
  struct Epoch {
    double successes;
    double failures;
  };
  std::size_t window_;
  std::deque<Epoch> epochs_;
  double successes_ = 0.0;
  double failures_ = 0.0;
};

}  // namespace trustrate::trust
