#include "trust/opinion.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace trustrate::trust {

Opinion Opinion::from_evidence(double s, double f) {
  TRUSTRATE_EXPECTS(s >= 0.0 && f >= 0.0, "evidence counts must be non-negative");
  const double denom = s + f + 2.0;
  return {s / denom, f / denom, 2.0 / denom};
}

Opinion Opinion::from_value(double value, double base_uncertainty) {
  TRUSTRATE_EXPECTS(base_uncertainty >= 0.0 && base_uncertainty <= 1.0,
                    "base_uncertainty must be in [0, 1]");
  const double v = clamp_unit(value);
  const double certain = 1.0 - base_uncertainty;
  return {v * certain, (1.0 - v) * certain, base_uncertainty};
}

double Opinion::expectation(double base_rate) const {
  return belief + base_rate * uncertainty;
}

bool Opinion::valid(double tol) const {
  if (belief < -tol || disbelief < -tol || uncertainty < -tol) return false;
  return std::fabs(belief + disbelief + uncertainty - 1.0) <= tol;
}

Opinion discount(const Opinion& trust_in_source, const Opinion& statement) {
  const double t = trust_in_source.belief;
  Opinion out;
  out.belief = t * statement.belief;
  out.disbelief = t * statement.disbelief;
  out.uncertainty = 1.0 - out.belief - out.disbelief;
  return out;
}

Opinion consensus(const Opinion& a, const Opinion& b) {
  const double k = a.uncertainty + b.uncertainty - a.uncertainty * b.uncertainty;
  if (k <= 1e-12) {
    // Both dogmatic: average the dogmatic parts.
    return {(a.belief + b.belief) / 2.0, (a.disbelief + b.disbelief) / 2.0, 0.0};
  }
  Opinion out;
  out.belief = (a.belief * b.uncertainty + b.belief * a.uncertainty) / k;
  out.disbelief = (a.disbelief * b.uncertainty + b.disbelief * a.uncertainty) / k;
  out.uncertainty = (a.uncertainty * b.uncertainty) / k;
  // Normalize residual numeric drift so the invariant holds exactly.
  const double sum = out.belief + out.disbelief + out.uncertainty;
  out.belief /= sum;
  out.disbelief /= sum;
  out.uncertainty /= sum;
  return out;
}

}  // namespace trustrate::trust
