#include "trust/forgetting.hpp"

#include "common/error.hpp"

namespace trustrate::trust {

double effective_memory_epochs(double lambda) {
  TRUSTRATE_EXPECTS(lambda >= 0.0 && lambda <= 1.0, "lambda must be in [0, 1]");
  if (lambda >= 1.0) return 1e9;
  return 1.0 / (1.0 - lambda);
}

double lambda_for_memory(double epochs) {
  TRUSTRATE_EXPECTS(epochs >= 1.0, "memory must be at least one epoch");
  return 1.0 - 1.0 / epochs;
}

WindowedTrustRecord::WindowedTrustRecord(std::size_t window) : window_(window) {
  TRUSTRATE_EXPECTS(window >= 1, "window must hold at least one epoch");
}

void WindowedTrustRecord::add_epoch(double successes, double failures) {
  TRUSTRATE_EXPECTS(successes >= 0.0 && failures >= 0.0,
                    "evidence must be non-negative");
  epochs_.push_back({successes, failures});
  successes_ += successes;
  failures_ += failures;
  if (epochs_.size() > window_) {
    successes_ -= epochs_.front().successes;
    failures_ -= epochs_.front().failures;
    epochs_.pop_front();
  }
}

double WindowedTrustRecord::trust() const {
  return (successes_ + 1.0) / (successes_ + failures_ + 2.0);
}

}  // namespace trustrate::trust
