#include "trust/rater_profile.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace trustrate::trust {

double RaterProfile::bias() const {
  if (ratings == 0) return 0.0;
  return deviation_sum / static_cast<double>(ratings);
}

double RaterProfile::spread() const {
  if (ratings < 2) return 0.0;
  const double mean = bias();
  const double var =
      deviation_sq_sum / static_cast<double>(ratings) - mean * mean;
  return std::sqrt(std::max(var, 0.0));
}

void RaterProfile::add(double deviation) {
  ++ratings;
  deviation_sum += deviation;
  deviation_sq_sum += deviation * deviation;
}

RaterProfileStore::RaterProfileStore(ProfileClassifierConfig config)
    : config_(config) {
  TRUSTRATE_EXPECTS(config_.bias_threshold > 0.0,
                    "bias threshold must be positive");
  TRUSTRATE_EXPECTS(config_.spread_threshold > 0.0,
                    "spread threshold must be positive");
  TRUSTRATE_EXPECTS(config_.min_ratings >= 2,
                    "classification needs at least 2 ratings");
}

void RaterProfileStore::observe_product(const RatingSeries& ratings) {
  const std::size_t n = ratings.size();
  if (n < 2) return;
  double total = 0.0;
  for (const Rating& r : ratings) total += r.value;
  // Leave-one-out consensus: the rater's own rating must not drag the
  // reference toward itself, or small products never reveal bias.
  const double denom = static_cast<double>(n - 1);
  for (const Rating& r : ratings) {
    const double consensus = (total - r.value) / denom;
    profiles_[r.rater].add(r.value - consensus);
  }
}

RaterBehavior RaterProfileStore::classify(RaterId id) const {
  const RaterProfile* p = find(id);
  if (p == nullptr || p->ratings < config_.min_ratings) {
    return RaterBehavior::kUnclassified;
  }
  if (p->bias() > config_.bias_threshold) return RaterBehavior::kBiasedHigh;
  if (p->bias() < -config_.bias_threshold) return RaterBehavior::kBiasedLow;
  if (p->spread() > config_.spread_threshold) return RaterBehavior::kCareless;
  return RaterBehavior::kNormal;
}

double RaterProfileStore::bias_of(RaterId id) const {
  const RaterProfile* p = find(id);
  if (p == nullptr || p->ratings < config_.min_ratings) return 0.0;
  return p->bias();
}

double RaterProfileStore::debias(RaterId id, double value) const {
  return clamp_unit(value - bias_of(id));
}

const RaterProfile* RaterProfileStore::find(RaterId id) const {
  const auto it = profiles_.find(id);
  return it == profiles_.end() ? nullptr : &it->second;
}

}  // namespace trustrate::trust
