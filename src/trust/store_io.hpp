// Trust-store persistence: CSV save/load so a deployed system can restart
// without losing its accumulated trust evidence. (For the *complete*
// streaming state — epoch anchor, reorder buffer, retained series — see
// core/checkpoint.hpp; this file is the human-readable trust-only subset.)
//
// Format (no header): rater_id,successes,failures
// Evidence is written with max_digits10 precision so values round-trip
// exactly; load errors carry the 1-based file line number.
#pragma once

#include <iosfwd>

#include "trust/record.hpp"

namespace trustrate::trust {

/// Writes every record, sorted by rater id (deterministic output).
void save_store_csv(const TrustStore& store, std::ostream& out);

/// Reads records into a fresh store. Throws DataError on malformed rows,
/// non-finite or negative evidence, or duplicate rater ids; messages name
/// the offending source line.
TrustStore load_store_csv(std::istream& in);

}  // namespace trustrate::trust
