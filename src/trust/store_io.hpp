// Trust-store persistence: CSV save/load so a deployed system can restart
// without losing its accumulated trust evidence.
//
// Format (no header): rater_id,successes,failures
#pragma once

#include <iosfwd>

#include "trust/record.hpp"

namespace trustrate::trust {

/// Writes every record, sorted by rater id (deterministic output).
void save_store_csv(const TrustStore& store, std::ostream& out);

/// Reads records into a fresh store. Throws DataError on malformed rows,
/// negative evidence, or duplicate rater ids.
TrustStore load_store_csv(std::istream& in);

}  // namespace trustrate::trust
