// Indirect trust establishment from rater-on-rater feedback.
//
// Some rating sites let users mark other users' reviews helpful/unhelpful.
// The paper's trust manager stores this in a Recommendation Buffer and
// derives indirect trust {system : rater, providing fair rating} from it.
// Propagation: the system discounts each recommender's statement by its own
// (direct) trust in the recommender, then combines paths by consensus.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "trust/opinion.hpp"
#include "trust/record.hpp"

namespace trustrate::trust {

/// One piece of rater-on-rater feedback: `from` judges `about`'s ratings
/// helpful (score near 1) or unhelpful (score near 0).
struct Recommendation {
  RaterId from = kNoRater;
  RaterId about = kNoRater;
  double score = 0.5;  ///< in [0, 1]
};

/// Buffer of recommendations awaiting the next trust update.
class RecommendationBuffer {
 public:
  void add(const Recommendation& rec);

  /// All recommendations about `about`.
  std::vector<Recommendation> about(RaterId about) const;

  std::size_t size() const { return recs_.size(); }
  void clear() { recs_.clear(); }

 private:
  std::vector<Recommendation> recs_;
};

/// Indirect trust opinion about `target` from the buffered recommendations,
/// where each recommender's statement is discounted by the system's direct
/// trust in the recommender (from `store`). Returns the vacuous opinion
/// when nobody has recommended `target`. Self-recommendations are ignored.
Opinion indirect_opinion(const TrustStore& store, const RecommendationBuffer& buffer,
                         RaterId target);

/// Blended trust value: consensus of direct evidence (from `store`) and the
/// indirect opinion; expectation of the combined opinion.
double combined_trust(const TrustStore& store, const RecommendationBuffer& buffer,
                      RaterId target);

}  // namespace trustrate::trust
