#include "trust/record.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trustrate::trust {

void TrustRecord::fade(double factor) {
  TRUSTRATE_EXPECTS(factor >= 0.0 && factor <= 1.0,
                    "fade factor must be in [0, 1]");
  successes *= factor;
  failures *= factor;
}

void update_record(TrustRecord& record, const EpochObservation& obs, double b) {
  TRUSTRATE_EXPECTS(b >= 0.0, "Procedure 2 parameter b must be >= 0");
  TRUSTRATE_EXPECTS(obs.filtered + obs.suspicious <= obs.ratings ||
                        obs.filtered <= obs.ratings,
                    "filtered ratings cannot exceed ratings provided");
  record.failures += static_cast<double>(obs.filtered) + b * obs.suspicion_value;
  const double gained = static_cast<double>(obs.ratings) -
                        static_cast<double>(obs.filtered) -
                        static_cast<double>(obs.suspicious);
  record.successes += std::max(gained, 0.0);
}

double TrustStore::trust(RaterId id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return 0.5;
  return it->second.trust();
}

void TrustStore::update(RaterId id, const EpochObservation& obs, double b) {
  TrustRecord& record = records_[id];
  if (observer_) {
    const double before = record.trust();
    update_record(record, obs, b);
    observer_(id, before, record.trust());
  } else {
    update_record(record, obs, b);
  }
}

void TrustStore::fade_all(double factor) {
  for (auto& [id, record] : records_) record.fade(factor);
}

std::vector<RaterId> TrustStore::below(double threshold) const {
  std::vector<RaterId> out;
  for (const auto& [id, record] : records_) {
    if (record.trust() < threshold) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace trustrate::trust
