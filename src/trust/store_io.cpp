#include "trust/store_io.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace trustrate::trust {

void save_store_csv(const TrustStore& store, std::ostream& out) {
  std::vector<RaterId> ids;
  ids.reserve(store.size());
  for (const auto& [id, record] : store.records()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  // max_digits10 so the evidence doubles round-trip exactly through load.
  const auto precision =
      out.precision(std::numeric_limits<double>::max_digits10);
  for (RaterId id : ids) {
    const TrustRecord& r = store.records().at(id);
    out << id << ',' << r.successes << ',' << r.failures << '\n';
  }
  out.precision(precision);
}

TrustStore load_store_csv(std::istream& in) {
  TrustStore store;
  for (const auto& row : read_csv_rows(in)) {
    const std::string context = "trust store line " + std::to_string(row.line);
    const auto& fields = row.fields;
    if (fields.size() != 3) {
      throw DataError("expected 3 fields (rater,S,F) in " + context);
    }
    const auto id = static_cast<RaterId>(parse_int_field(fields[0], context));
    const double s = parse_finite_field(fields[1], context);
    const double f = parse_finite_field(fields[2], context);
    if (s < 0.0 || f < 0.0) {
      throw DataError("negative evidence in " + context);
    }
    if (store.records().contains(id)) {
      throw DataError("duplicate rater id in " + context);
    }
    store.record(id) = TrustRecord{.successes = s, .failures = f};
  }
  return store;
}

}  // namespace trustrate::trust
