#include "trust/store_io.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace trustrate::trust {

void save_store_csv(const TrustStore& store, std::ostream& out) {
  std::vector<RaterId> ids;
  ids.reserve(store.size());
  for (const auto& [id, record] : store.records()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (RaterId id : ids) {
    const TrustRecord& r = store.records().at(id);
    out << id << ',' << r.successes << ',' << r.failures << '\n';
  }
}

TrustStore load_store_csv(std::istream& in) {
  TrustStore store;
  std::size_t row_number = 0;
  for (const auto& row : read_csv(in)) {
    ++row_number;
    const std::string context = "trust store row " + std::to_string(row_number);
    if (row.size() != 3) {
      throw DataError("expected 3 fields (rater,S,F) in " + context);
    }
    const auto id = static_cast<RaterId>(parse_int_field(row[0], context));
    const double s = parse_double_field(row[1], context);
    const double f = parse_double_field(row[2], context);
    if (s < 0.0 || f < 0.0) {
      throw DataError("negative evidence in " + context);
    }
    if (store.records().contains(id)) {
      throw DataError("duplicate rater id in " + context);
    }
    store.record(id) = TrustRecord{.successes = s, .failures = f};
  }
  return store;
}

}  // namespace trustrate::trust
