#include "trust/propagation.hpp"

#include "common/error.hpp"

namespace trustrate::trust {

namespace {
// Uncertainty assigned to a single helpful/unhelpful vote. One vote should
// not be dogmatic; treating it as one unit of beta evidence gives u = 2/3.
constexpr double kVoteUncertainty = 2.0 / 3.0;
}  // namespace

void RecommendationBuffer::add(const Recommendation& rec) {
  TRUSTRATE_EXPECTS(rec.score >= 0.0 && rec.score <= 1.0,
                    "recommendation score must be in [0, 1]");
  recs_.push_back(rec);
}

std::vector<Recommendation> RecommendationBuffer::about(RaterId about) const {
  std::vector<Recommendation> out;
  for (const Recommendation& r : recs_) {
    if (r.about == about) out.push_back(r);
  }
  return out;
}

Opinion indirect_opinion(const TrustStore& store, const RecommendationBuffer& buffer,
                         RaterId target) {
  Opinion combined{0.0, 0.0, 1.0};  // vacuous
  bool any = false;
  for (const Recommendation& rec : buffer.about(target)) {
    if (rec.from == rec.about) continue;  // self-promotion is not evidence
    const auto it = store.records().find(rec.from);
    const Opinion recommender_trust =
        (it != store.records().end())
            ? Opinion::from_evidence(it->second.successes, it->second.failures)
            : Opinion::from_evidence(0.0, 0.0);
    const Opinion statement = Opinion::from_value(rec.score, kVoteUncertainty);
    const Opinion path = discount(recommender_trust, statement);
    combined = any ? consensus(combined, path) : path;
    any = true;
  }
  return combined;
}

double combined_trust(const TrustStore& store, const RecommendationBuffer& buffer,
                      RaterId target) {
  const auto it = store.records().find(target);
  const Opinion direct =
      (it != store.records().end())
          ? Opinion::from_evidence(it->second.successes, it->second.failures)
          : Opinion::from_evidence(0.0, 0.0);
  const Opinion indirect = indirect_opinion(store, buffer, target);
  return consensus(direct, indirect).expectation();
}

}  // namespace trustrate::trust
