// Opinion algebra: (belief, disbelief, uncertainty) triples with discounting
// and consensus, in the style of Jøsang's subjective logic and the trust
// evaluation framework of Sun et al. (INFOCOM'06, the paper's ref. [8]).
//
// Used for (a) the "Method 4" rating aggregator the paper benchmarks
// against, and (b) indirect-trust propagation in the trust manager.
// See DESIGN.md §5: the exact equations of [8] were not available, so this
// module is the documented stand-in from the same beta-evidence family.
#pragma once

namespace trustrate::trust {

/// A subjective opinion: belief + disbelief + uncertainty == 1.
struct Opinion {
  double belief = 0.0;
  double disbelief = 0.0;
  double uncertainty = 1.0;

  /// Opinion from beta evidence (s successes, f failures):
  /// b = s/(s+f+2), d = f/(s+f+2), u = 2/(s+f+2).
  static Opinion from_evidence(double s, double f);

  /// Opinion encoding a graded statement with fixed uncertainty:
  /// b = value*(1-u), d = (1-value)*(1-u). `value` in [0,1], `u` in [0,1].
  static Opinion from_value(double value, double base_uncertainty);

  /// Probability expectation b + base_rate * u.
  double expectation(double base_rate = 0.5) const;

  /// Validity check (components non-negative, sum to 1 within tolerance).
  bool valid(double tol = 1e-9) const;
};

/// Discounting (trust propagation along a chain): the subject holds
/// `trust_in_source` about the recommender, who holds `statement` about the
/// target. Belief and disbelief shrink by the recommender's belief mass;
/// everything else becomes uncertainty. Sun et al.'s concatenation
/// propagation has the same fixed point: no trust in the recommender ->
/// vacuous opinion.
Opinion discount(const Opinion& trust_in_source, const Opinion& statement);

/// Consensus (multipath combination) of two independent opinions about the
/// same statement. Jøsang's rule; when both opinions are dogmatic
/// (u == 0) the result is their average.
Opinion consensus(const Opinion& a, const Opinion& b);

}  // namespace trustrate::trust
