// Beta-function trust records (paper §III-B, Procedure 2).
//
// A rater's trust is (S + 1) / (S + F + 2) where S counts (estimated)
// honest ratings and F counts (estimated) dishonest ones — the mean of a
// Beta(S+1, F+1) posterior. Procedure 2 estimates S and F from the rating
// filter (hard evidence) and the AR suspicion values (soft evidence).
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace trustrate::trust {

/// Evidence accumulated about one rater.
struct TrustRecord {
  double successes = 0.0;  ///< S: estimated honest ratings
  double failures = 0.0;   ///< F: estimated dishonest ratings

  /// Beta-mean trust in (0, 1). Fresh records report 0.5 (paper's initial
  /// trust value).
  double trust() const { return (successes + 1.0) / (successes + failures + 2.0); }

  /// Evidence mass backing this record (0 for a fresh rater).
  double evidence() const { return successes + failures; }

  /// Exponential forgetting: both counters decay by `factor` in [0, 1]
  /// so old behaviour matters less than recent behaviour ([8]'s fading
  /// scheme; factor == 1 disables forgetting).
  void fade(double factor);
};

/// What the rating aggregator observed about one rater during one epoch
/// (paper Procedure 2 variables).
struct EpochObservation {
  std::size_t ratings = 0;        ///< n_i: ratings provided in the epoch
  std::size_t filtered = 0;       ///< f_i: ratings removed by the filter
  std::size_t suspicious = 0;     ///< s_i: kept ratings inside >=1 suspicious window
  double suspicion_value = 0.0;   ///< C_i: accumulated suspicious level (Procedure 1)
};

/// Applies one Procedure-2 update: F += f + b*C, S += n − f − s.
/// `b` weighs a suspicion unit relative to a hard filter rejection.
/// S never goes negative (s counts a subset of n − f, but soft double
/// counting across overlapping windows is clamped defensively).
void update_record(TrustRecord& record, const EpochObservation& obs, double b);

/// Trust records for a rater population.
class TrustStore {
 public:
  /// Record for `id`, created at the neutral prior when absent.
  TrustRecord& record(RaterId id) { return records_[id]; }

  /// Trust in `id`; 0.5 for unknown raters (fresh prior).
  double trust(RaterId id) const;

  /// Applies Procedure 2 to one rater.
  void update(RaterId id, const EpochObservation& obs, double b);

  /// Observation hook fired after every update() with the rater's trust
  /// before and after the Procedure-2 step — the instrumentation point the
  /// detection audit log (obs/audit.hpp) uses to catch demotions below the
  /// malicious threshold. Not store *state*: checkpoints never persist it,
  /// and callers re-attach after restore. The callback must not reenter
  /// the store.
  using UpdateObserver =
      std::function<void(RaterId id, double trust_before, double trust_after)>;
  void set_update_observer(UpdateObserver observer) {
    observer_ = std::move(observer);
  }

  /// Applies exponential forgetting to every record.
  void fade_all(double factor);

  /// Raters whose trust is strictly below `threshold` (the paper flags
  /// potential collaborative raters with threshold 0.5).
  std::vector<RaterId> below(double threshold) const;

  std::size_t size() const { return records_.size(); }
  const std::unordered_map<RaterId, TrustRecord>& records() const { return records_; }

 private:
  std::unordered_map<RaterId, TrustRecord> records_;
  UpdateObserver observer_;
};

}  // namespace trustrate::trust
