#include "sim/illustrative.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "sim/quality.hpp"

namespace trustrate::sim {

RatingSeries generate_illustrative(const IllustrativeConfig& config, Rng& rng) {
  TRUSTRATE_EXPECTS(config.simu_time > 0.0, "simu_time must be positive");
  TRUSTRATE_EXPECTS(config.arrival_rate > 0.0, "arrival_rate must be positive");
  TRUSTRATE_EXPECTS(config.honest_pool >= 1, "need at least one honest rater");
  TRUSTRATE_EXPECTS(config.attack_end >= config.attack_start,
                    "attack interval must be well-formed");

  const QualityTrajectory quality(config.quality_start, config.quality_end, 0.0,
                                  config.simu_time);
  RatingSeries series;

  // Pre-mark which honest raters are type-1 "influenced".
  std::vector<bool> influenced(static_cast<std::size_t>(config.honest_pool), false);
  if (config.enable_type1) {
    for (auto&& flag : influenced) flag = rng.bernoulli(config.recruit_power1);
  }

  auto quantize = [&](double v) {
    return quantize_unit(v, config.levels, config.levels_include_zero);
  };
  const auto in_attack = [&](double t) {
    return t >= config.attack_start && t < config.attack_end;
  };

  // Honest (and type-1-influenced) stream: Poisson arrivals over the run.
  for (double t = rng.exponential(config.arrival_rate); t < config.simu_time;
       t += rng.exponential(config.arrival_rate)) {
    const auto rater =
        static_cast<RaterId>(rng.uniform_int(0, config.honest_pool - 1));
    double value = rng.gaussian(quality.at(t), config.good_sigma);
    RatingLabel label = RatingLabel::kHonest;
    if (config.enable_type1 && influenced[rater] && in_attack(t)) {
      value += config.bias_shift1;
      label = RatingLabel::kCollaborative1;
    }
    series.push_back({t, quantize(value), rater, 0, label});
  }

  // Type-2 stream: extra recruited raters during the attack interval only.
  if (config.enable_type2 && config.recruit_power2 > 0.0 &&
      config.attack_end > config.attack_start) {
    const double rate = config.arrival_rate * config.recruit_power2;
    const auto first_type2 = static_cast<RaterId>(config.honest_pool);
    for (double t = config.attack_start + rng.exponential(rate);
         t < std::min(config.attack_end, config.simu_time);
         t += rng.exponential(rate)) {
      const auto rater = static_cast<RaterId>(
          first_type2 + rng.uniform_int(0, std::max(config.type2_pool - 1, 0)));
      const double value =
          rng.gaussian(quality.at(t) + config.bias_shift2, config.bad_sigma);
      series.push_back({t, quantize(value), rater, 0, RatingLabel::kCollaborative2});
    }
  }

  sort_by_time(series);
  return series;
}

RatingSeries generate_illustrative_honest_only(IllustrativeConfig config, Rng& rng) {
  config.enable_type1 = false;
  config.enable_type2 = false;
  return generate_illustrative(config, rng);
}

}  // namespace trustrate::sim
