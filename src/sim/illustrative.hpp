// The illustrative single-object scenario of §III-A.2: Poisson-arriving
// honest ratings around a drifting quality, plus two kinds of collaborative
// unfair ratings inside an attack interval.
//
//  * Type 1: existing raters are "influenced" — with probability
//    `recruit_power1` a rater shifts their rating by `bias_shift1` during
//    the attack.
//  * Type 2: recruited raters who would not otherwise rate arrive as an
//    extra Poisson stream of rate `arrival_rate * recruit_power2`, rating
//    N(quality + bias_shift2, bad_sigma^2).
//
// Parameter names mirror the paper (simu_time, arrival_rate, ...). The
// paper labels its dispersion parameters "variance"; they are interpreted
// as standard deviations here (DESIGN.md §5) — the published scatter plots
// are only consistent with that reading.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace trustrate::sim {

struct IllustrativeConfig {
  // --- honest population ---
  double simu_time = 60.0;      ///< days
  double arrival_rate = 3.0;    ///< honest ratings per day (Poisson)
  int levels = 11;              ///< rating levels 0, 0.1, ..., 1.0
  bool levels_include_zero = true;
  double quality_start = 0.7;
  double quality_end = 0.8;
  double good_sigma = 0.2;      ///< honest rating spread (paper "goodVar")
  int honest_pool = 150;        ///< distinct honest rater ids to draw from

  // --- attack interval ---
  double attack_start = 30.0;   ///< paper A_start
  double attack_end = 44.0;     ///< paper A_end

  // --- type 1 collaborative raters ---
  bool enable_type1 = true;
  double bias_shift1 = 0.2;
  double recruit_power1 = 0.3;  ///< fraction of honest raters influenced

  // --- type 2 collaborative raters ---
  bool enable_type2 = true;
  double bias_shift2 = 0.15;
  double bad_sigma = 0.02;      ///< paper "badVar"
  double recruit_power2 = 1.0;  ///< type-2 rate = arrival_rate * this
  int type2_pool = 60;          ///< distinct type-2 rater ids
};

/// Generates one time-sorted rating series for the scenario. Ground truth
/// is recorded in each rating's label. Honest rater ids are
/// [0, honest_pool); type-2 ids start at honest_pool.
RatingSeries generate_illustrative(const IllustrativeConfig& config, Rng& rng);

/// Same scenario with both attack types disabled (the "without
/// collaborative raters" control in Figs. 2-4).
RatingSeries generate_illustrative_honest_only(IllustrativeConfig config, Rng& rng);

}  // namespace trustrate::sim
