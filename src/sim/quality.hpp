// Object-quality trajectories.
#pragma once

namespace trustrate::sim {

/// Linearly drifting quality: q(t) interpolates from `start_value` at
/// t = t_start to `end_value` at t = t_end, clamped outside the range.
/// The paper's illustrative object drifts 0.7 -> 0.8 over 60 days.
class QualityTrajectory {
 public:
  QualityTrajectory(double start_value, double end_value, double t_start,
                    double t_end);

  /// Constant quality.
  static QualityTrajectory constant(double value);

  double at(double t) const;

  double start_value() const { return start_value_; }
  double end_value() const { return end_value_; }

 private:
  double start_value_;
  double end_value_;
  double t_start_;
  double t_end_;
};

}  // namespace trustrate::sim
