#include "sim/marketplace.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace trustrate::sim {

namespace {

// Samples `count` distinct elements from [0, n) (partial Fisher-Yates).
std::vector<int> sample_without_replacement(int n, int count, Rng& rng) {
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  count = std::min(count, n);
  for (int i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(i, n - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(count));
  return pool;
}

}  // namespace

std::vector<const SimProduct*> MarketplaceResult::products_in_month(int month) const {
  std::vector<const SimProduct*> out;
  for (const SimProduct& p : products) {
    if (p.month == month) out.push_back(&p);
  }
  return out;
}

MarketplaceResult simulate_marketplace(const MarketplaceConfig& config, Rng& rng) {
  TRUSTRATE_EXPECTS(config.reliable_raters >= 0 && config.careless_raters >= 0 &&
                        config.pc_raters >= 0,
                    "rater counts must be non-negative");
  TRUSTRATE_EXPECTS(config.months >= 1, "need at least one month");
  TRUSTRATE_EXPECTS(config.p_rate > 0.0 && config.p_rate * config.a1 <= 1.0,
                    "a1 * p_rate must stay a probability");
  TRUSTRATE_EXPECTS(config.a1 > 1.0 && config.a2 < 1.0 && config.a2 > 0.0,
                    "paper requires a1 > 1 and 0 < a2 < 1");
  TRUSTRATE_EXPECTS(config.attack_days <= config.days_per_month,
                    "attack window must fit inside a month");

  MarketplaceResult result;
  const int total_raters =
      config.reliable_raters + config.careless_raters + config.pc_raters;
  result.rater_kind.reserve(static_cast<std::size_t>(total_raters));
  for (int i = 0; i < config.reliable_raters; ++i)
    result.rater_kind.push_back(RaterKind::kReliable);
  for (int i = 0; i < config.careless_raters; ++i)
    result.rater_kind.push_back(RaterKind::kCareless);
  for (int i = 0; i < config.pc_raters; ++i)
    result.rater_kind.push_back(RaterKind::kPotentialCollaborative);

  // Active population: under churn, slot k of each category maps to a
  // (possibly replaced) rater id; fresh ids extend rater_kind.
  std::vector<RaterId> active_id(static_cast<std::size_t>(total_raters));
  for (int i = 0; i < total_raters; ++i) {
    active_id[static_cast<std::size_t>(i)] = static_cast<RaterId>(i);
  }

  ProductId next_product = 0;
  for (int month = 0; month < config.months; ++month) {
    const double month_start = month * config.days_per_month;
    const double month_end = month_start + config.days_per_month;

    // Churn: replace a fraction of the population with fresh identities of
    // the same behavioural kind (not in month 0 — the initial population).
    if (config.monthly_churn > 0.0 && month > 0) {
      for (auto& id : active_id) {
        if (!rng.bernoulli(config.monthly_churn)) continue;
        const RaterKind kind = result.rater_kind[id];
        id = static_cast<RaterId>(result.rater_kind.size());
        result.rater_kind.push_back(kind);
      }
    }

    // Create this month's products.
    std::vector<SimProduct> active;
    const int total_products =
        config.honest_products_per_month + config.dishonest_products_per_month;
    for (int k = 0; k < total_products; ++k) {
      SimProduct p;
      p.id = next_product++;
      p.month = month;
      p.dishonest = k >= config.honest_products_per_month;
      p.quality = rng.uniform(config.quality_lo, config.quality_hi);
      p.t_start = month_start;
      p.t_end = month_end;
      active.push_back(p);
    }

    // Dishonest products pick an attack window and recruit PC raters
    // (or mint fresh Sybil identities under the whitewash strategy).
    const bool campaign_month =
        (month % std::max(config.attack_every_k_months, 1)) == 0;
    std::vector<std::unordered_set<RaterId>> recruited(active.size());
    for (std::size_t pi = 0; pi < active.size(); ++pi) {
      SimProduct& p = active[pi];
      if (!p.dishonest || !campaign_month) continue;
      const double latest_start = config.days_per_month - config.attack_days;
      const double offset =
          (latest_start > 0.0) ? rng.uniform(0.0, latest_start) : 0.0;
      p.attack_start = month_start + offset;
      p.attack_end = p.attack_start + config.attack_days;

      const int to_recruit = static_cast<int>(
          std::lround(config.recruit_power3 * config.pc_raters));
      if (config.whitewash) {
        for (int i = 0; i < to_recruit; ++i) {
          const auto rater = static_cast<RaterId>(result.rater_kind.size());
          result.rater_kind.push_back(RaterKind::kPotentialCollaborative);
          recruited[pi].insert(rater);
          result.ever_recruited.insert(rater);
        }
      } else {
        for (int idx :
             sample_without_replacement(config.pc_raters, to_recruit, rng)) {
          const RaterId rater = active_id[static_cast<std::size_t>(
              config.reliable_raters + config.careless_raters + idx)];
          recruited[pi].insert(rater);
          result.ever_recruited.insert(rater);
        }
      }
    }

    // Daily rating decisions. `rated` guards one-rating-per-product.
    std::vector<std::unordered_set<RaterId>> rated(active.size());
    const int days = static_cast<int>(config.days_per_month);
    for (int day = 0; day < days; ++day) {
      const double day_start = month_start + day;
      for (std::size_t pi = 0; pi < active.size(); ++pi) {
        SimProduct& p = active[pi];
        for (int slot = 0; slot < total_raters; ++slot) {
          const RaterId rater = active_id[static_cast<std::size_t>(slot)];
          if (rated[pi].contains(rater)) continue;
          const RaterKind kind = result.rater_kind[rater];

          const double t = day_start + rng.uniform();
          const bool recruited_here = recruited[pi].contains(rater);
          const bool in_attack =
              p.dishonest && t >= p.attack_start && t < p.attack_end;

          double prob = config.p_rate;
          bool attack_rating = false;
          if (kind == RaterKind::kPotentialCollaborative) {
            if (recruited_here && in_attack && !config.recruit_burst) {
              prob = config.a1 * config.p_rate;
              attack_rating = true;
            } else {
              prob = config.a2 * config.p_rate;
            }
          }
          if (!rng.bernoulli(prob)) continue;

          double value;
          RatingLabel label;
          if (attack_rating) {
            value = rng.gaussian(p.quality + config.bias_shift2, config.bad_sigma);
            label = RatingLabel::kCollaborative2;
          } else if (kind == RaterKind::kCareless) {
            value = rng.gaussian(p.quality, config.careless_sigma);
            label = RatingLabel::kCareless;
          } else {
            value = rng.gaussian(p.quality, config.good_sigma);
            label = RatingLabel::kHonest;
          }
          p.ratings.push_back(
              {t, quantize_unit(value, config.levels, /*include_zero=*/false),
               rater, p.id, label});
          rated[pi].insert(rater);
        }
      }
    }

    // Attack ratings emitted outside the daily loop: burst-mode campaigns
    // (each participating recruit rates shortly after the campaign starts)
    // and whitewash Sybils (whose fresh ids are not part of the daily
    // population; in spread mode their arrival day follows the same daily
    // coin as the in-loop model).
    if (config.recruit_burst || config.whitewash) {
      const double participation =
          1.0 - std::pow(1.0 - config.a1 * config.p_rate, config.attack_days);
      for (std::size_t pi = 0; pi < active.size(); ++pi) {
        SimProduct& p = active[pi];
        if (!p.dishonest) continue;
        for (RaterId rater : recruited[pi]) {
          if (rated[pi].contains(rater)) continue;
          double t = -1.0;
          if (config.recruit_burst) {
            if (!rng.bernoulli(participation)) continue;
            t = p.attack_start + rng.exponential(1.0 / config.burst_mean_days);
            if (t >= p.attack_end) continue;
          } else {
            // Spread mode (whitewash only; PC recruits are handled in the
            // daily loop): first success of the daily a1*p_rate coin.
            const int days_in_window = static_cast<int>(config.attack_days);
            for (int d = 0; d < days_in_window; ++d) {
              if (rng.bernoulli(config.a1 * config.p_rate)) {
                t = p.attack_start + d + rng.uniform();
                break;
              }
            }
            if (t < 0.0 || t >= p.attack_end) continue;
          }
          const double value =
              rng.gaussian(p.quality + config.bias_shift2, config.bad_sigma);
          p.ratings.push_back(
              {t, quantize_unit(value, config.levels, /*include_zero=*/false),
               rater, p.id, RatingLabel::kCollaborative2});
          rated[pi].insert(rater);
        }
      }
    }

    for (SimProduct& p : active) {
      sort_by_time(p.ratings);
      result.products.push_back(std::move(p));
    }
  }
  return result;
}

}  // namespace trustrate::sim
