#include "sim/quality.hpp"

#include "common/error.hpp"

namespace trustrate::sim {

QualityTrajectory::QualityTrajectory(double start_value, double end_value,
                                     double t_start, double t_end)
    : start_value_(start_value), end_value_(end_value), t_start_(t_start),
      t_end_(t_end) {
  TRUSTRATE_EXPECTS(t_end > t_start, "quality trajectory needs t_end > t_start");
}

QualityTrajectory QualityTrajectory::constant(double value) {
  return QualityTrajectory(value, value, 0.0, 1.0);
}

double QualityTrajectory::at(double t) const {
  if (t <= t_start_) return start_value_;
  if (t >= t_end_) return end_value_;
  const double frac = (t - t_start_) / (t_end_ - t_start_);
  return start_value_ + frac * (end_value_ - start_value_);
}

}  // namespace trustrate::sim
