// The §IV marketplace simulation: 800 raters (400 reliable, 200 careless,
// 200 potential-collaborative) rating 60 products over 12 months, where
// each month 4 honest products and 1 dishonest product are active and the
// dishonest product recruits potential-collaborative (PC) raters for a
// 10-day attack.
//
// Behaviour rules (paper §IV-A):
//  * Reliable/careless raters rate each active product with daily
//    probability p_rate; values ~ N(quality, sigma) quantized to 10 levels
//    0.1..1.0; one rating per rater per product.
//  * A PC rater recruited by the current dishonest product rates it with
//    daily probability a1 * p_rate (a1 > 1) during the attack window,
//    giving N(quality + bias_shift2, bad_sigma). Otherwise PC raters
//    behave like reliable raters but rate with probability a2 * p_rate
//    (a2 < 1).
//  * Each dishonest product recruits `recruit_power3` of the PC pool.
//
// `p_rate` is not specified in the paper; the default is calibrated so a
// product collects a few dozen ratings per month (DESIGN.md §3).
#pragma once

#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace trustrate::sim {

/// Ground-truth rater category.
enum class RaterKind : std::uint8_t { kReliable, kCareless, kPotentialCollaborative };

struct MarketplaceConfig {
  // --- population ---
  int reliable_raters = 400;
  int careless_raters = 200;
  int pc_raters = 200;

  // --- calendar ---
  int months = 12;
  double days_per_month = 30.0;
  int honest_products_per_month = 4;
  int dishonest_products_per_month = 1;

  // --- product quality & rating noise ---
  double quality_lo = 0.4;
  double quality_hi = 0.6;
  double good_sigma = 0.2;      ///< reliable raters (paper "goodVar")
  double careless_sigma = 0.3;  ///< careless raters (paper "carelessVar")
  int levels = 10;              ///< scale 0.1 .. 1.0

  // --- attack model ---
  double bias_shift2 = 0.15;
  double bad_sigma = 0.02;      ///< paper "badVar"
  double recruit_power3 = 1.0;  ///< fraction of PC raters each dishonest product recruits
  double attack_days = 10.0;    ///< recruiting window length within the month

  /// Temporal structure of the recruited ratings. The paper's literal model
  /// (false) has each recruited rater toss an a1*p_rate coin every attack
  /// day, which spreads the collaborative ratings uniformly over the
  /// window. Real recruitment campaigns cluster: most recruits act within
  /// a day or two of being contacted. With true, each participating
  /// recruit rates at attack_start + Exp(burst_mean_days), concentrating
  /// the attack mass early — the temporal signature the AR detector is
  /// designed around. Participation probability matches the literal model:
  /// 1 - (1 - a1*p_rate)^attack_days.
  bool recruit_burst = false;
  double burst_mean_days = 2.0;

  // --- adaptive counter-strategies (the paper's future-work study) ---

  /// Dishonest products run a campaign only every k-th month (k > 1 is the
  /// "on-off" attack: idle months let the attackers' trust recover,
  /// especially under forgetting).
  int attack_every_k_months = 1;

  /// Whitewashing / Sybil strategy: instead of recruiting from the PC
  /// pool, each campaign uses *fresh* rater identities that have no trust
  /// history (they are appended to rater_kind as PC raters). Defeats
  /// identity-based trust accumulation by construction.
  bool whitewash = false;

  // --- population dynamics (extension) ---

  /// Fraction of each rater category replaced by fresh identities at the
  /// start of every month (rater churn). Newcomers keep the departed
  /// rater's behavioural kind but start from the neutral trust prior —
  /// the classic reputation-bootstrapping stressor. 0 disables churn.
  double monthly_churn = 0.0;

  // --- rating propensity ---
  double p_rate = 0.02;  ///< daily probability an honest rater rates an active product
  double a1 = 6.0;       ///< recruited PC multiplier (> 1)
  double a2 = 0.5;       ///< non-recruited PC multiplier (< 1)
};

/// One simulated product with its full rating history.
struct SimProduct {
  ProductId id = 0;
  int month = 0;          ///< month index 0..months-1
  bool dishonest = false;
  double quality = 0.5;
  double t_start = 0.0;   ///< active interval [t_start, t_end)
  double t_end = 0.0;
  double attack_start = 0.0;  ///< only meaningful when dishonest
  double attack_end = 0.0;
  RatingSeries ratings;   ///< time-sorted, ground-truth labelled
};

/// Full simulation output with ground truth for scoring.
struct MarketplaceResult {
  std::vector<SimProduct> products;
  std::vector<RaterKind> rater_kind;          ///< indexed by RaterId
  std::unordered_set<RaterId> ever_recruited; ///< PC raters recruited at least once

  std::size_t rater_count() const { return rater_kind.size(); }

  /// Products active in a given month.
  std::vector<const SimProduct*> products_in_month(int month) const;
};

/// Runs the full simulation. Rater ids are assigned contiguously:
/// [0, reliable) reliable, [reliable, reliable+careless) careless, rest PC.
MarketplaceResult simulate_marketplace(const MarketplaceConfig& config, Rng& rng);

}  // namespace trustrate::sim
