// Analytic attack-power model — the paper's equation (1).
//
// With N honest raters at true quality q and M collaborative raters all
// rating r, simple averaging yields (qN + rM) / (N + M). The attackers
// reach a target aggregate g when M > N (g − q) / (r − g); the paper's
// worked example (q = 3, g = 3.5 on a 5-level scale) gives M > N/3 for
// maximal bias (r = 5) and M > N for moderate bias (r = 4).
#pragma once

namespace trustrate::agg {

/// Aggregate rating under simple averaging with N honest ratings at value
/// `quality` and M collaborative ratings at value `attacker_rating`.
/// Requires N + M > 0.
double averaged_rating(double quality, long long honest, double attacker_rating,
                       long long attackers);

/// Smallest integer M such that the simple average strictly exceeds
/// `target`. Requires attacker_rating > target > quality and honest >= 0.
/// Returns the paper's bound M > N (g − q)/(r − g), rounded up to the next
/// integer that strictly satisfies it.
long long min_attackers_to_boost(double quality, long long honest,
                                 double attacker_rating, double target);

}  // namespace trustrate::agg
