#include "agg/attack_power.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trustrate::agg {

double averaged_rating(double quality, long long honest, double attacker_rating,
                       long long attackers) {
  TRUSTRATE_EXPECTS(honest >= 0 && attackers >= 0, "counts must be non-negative");
  TRUSTRATE_EXPECTS(honest + attackers > 0, "need at least one rating");
  return (quality * static_cast<double>(honest) +
          attacker_rating * static_cast<double>(attackers)) /
         static_cast<double>(honest + attackers);
}

long long min_attackers_to_boost(double quality, long long honest,
                                 double attacker_rating, double target) {
  TRUSTRATE_EXPECTS(honest >= 0, "honest count must be non-negative");
  TRUSTRATE_EXPECTS(attacker_rating > target,
                    "attackers must rate above the target to boost");
  TRUSTRATE_EXPECTS(target > quality, "target must exceed the true quality");
  const double bound =
      static_cast<double>(honest) * (target - quality) / (attacker_rating - target);
  // Strict inequality: the next integer strictly above the bound.
  const double floor_b = std::floor(bound);
  long long m = static_cast<long long>(floor_b) + 1;
  if (m < 1) m = 1;
  return m;
}

}  // namespace trustrate::agg
