#include "agg/aggregator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "trust/opinion.hpp"

namespace trustrate::agg {

double SimpleAverage::aggregate(std::span<const TrustedRating> ratings) const {
  TRUSTRATE_EXPECTS(!ratings.empty(), "cannot aggregate zero ratings");
  double sum = 0.0;
  for (const TrustedRating& r : ratings) sum += r.value;
  return sum / static_cast<double>(ratings.size());
}

double BetaAggregation::aggregate(std::span<const TrustedRating> ratings) const {
  TRUSTRATE_EXPECTS(!ratings.empty(), "cannot aggregate zero ratings");
  double s = 0.0;
  double f = 0.0;
  for (const TrustedRating& r : ratings) {
    s += r.value;
    f += 1.0 - r.value;
  }
  return (s + 1.0) / (s + f + 2.0);
}

double ModifiedWeightedAverage::aggregate(
    std::span<const TrustedRating> ratings) const {
  TRUSTRATE_EXPECTS(!ratings.empty(), "cannot aggregate zero ratings");
  double weight_sum = 0.0;
  double acc = 0.0;
  for (const TrustedRating& r : ratings) {
    const double w = std::max(r.trust - 0.5, 0.0);
    weight_sum += w;
    acc += w * r.value;
  }
  if (weight_sum <= 0.0) {
    // No rater above neutral trust: no trust signal, fall back to the mean.
    return SimpleAverage{}.aggregate(ratings);
  }
  return acc / weight_sum;
}

OpinionAggregation::OpinionAggregation(double admission_threshold)
    : admission_threshold_(admission_threshold) {
  TRUSTRATE_EXPECTS(admission_threshold > 0.0 && admission_threshold < 1.0,
                    "admission threshold must be in (0, 1)");
}

double OpinionAggregation::aggregate(std::span<const TrustedRating> ratings) const {
  TRUSTRATE_EXPECTS(!ratings.empty(), "cannot aggregate zero ratings");
  double sum = 0.0;
  std::size_t admitted = 0;
  for (const TrustedRating& r : ratings) {
    if (r.trust <= admission_threshold_) continue;
    sum += r.value;
    ++admitted;
  }
  if (admitted == 0) {
    // Nobody passes the admission decision: no basis to discriminate.
    return SimpleAverage{}.aggregate(ratings);
  }
  return sum / static_cast<double>(admitted);
}

std::unique_ptr<Aggregator> make_aggregator(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kSimpleAverage:
      return std::make_unique<SimpleAverage>();
    case AggregatorKind::kBetaFunction:
      return std::make_unique<BetaAggregation>();
    case AggregatorKind::kModifiedWeightedAverage:
      return std::make_unique<ModifiedWeightedAverage>();
    case AggregatorKind::kOpinionTrustModel:
      return std::make_unique<OpinionAggregation>();
  }
  throw PreconditionError("unknown aggregator kind");
}

}  // namespace trustrate::agg
