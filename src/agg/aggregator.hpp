// Rating aggregation interface and the four schemes compared in the
// paper's §III-B.2.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace trustrate::agg {

/// One rater's contribution to an aggregate: the rating value and the
/// system's trust in the rater. The paper assumes one rating per rater at
/// aggregation time; callers with multiple ratings per rater pre-average.
struct TrustedRating {
  double value = 0.0;  ///< rating in [0, 1]
  double trust = 0.5;  ///< trust in the rater, in (0, 1)
};

/// Abstract aggregation scheme: TrustedRatings -> aggregated rating [0, 1].
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Aggregates the given ratings. Requires a non-empty span.
  virtual double aggregate(std::span<const TrustedRating> ratings) const = 0;

  virtual std::string name() const = 0;
};

/// Method 1: plain arithmetic mean, ignoring trust.
class SimpleAverage final : public Aggregator {
 public:
  double aggregate(std::span<const TrustedRating> ratings) const override;
  std::string name() const override { return "simple-average"; }
};

/// Method 2: beta-function aggregation (Jøsang & Ismail 2002, ref. [30]):
/// Rag = (S' + 1) / (S' + F' + 2) with S' = Σ r_i and F' = Σ (1 − r_i).
class BetaAggregation final : public Aggregator {
 public:
  double aggregate(std::span<const TrustedRating> ratings) const override;
  std::string name() const override { return "beta-function"; }
};

/// Method 3 — the paper's choice: weighted average with weight
/// max(T_i − 0.5, 0). Raters at or below neutral trust are excluded; the
/// weight rewards trust *above* neutrality rather than absolute trust.
/// When every weight is zero (e.g. all raters still at the 0.5 prior) the
/// scheme degrades to the simple average — there is no trust signal yet.
class ModifiedWeightedAverage final : public Aggregator {
 public:
  double aggregate(std::span<const TrustedRating> ratings) const override;
  std::string name() const override { return "modified-weighted-average"; }
};

/// Method 4: trust-model aggregation in the style of Sun et al.
/// (INFOCOM'06, ref. [8]); see DESIGN.md §5 for the substitution note.
/// That framework makes *binary* trust decisions (secure-routing style):
/// an agent with trust above the neutral point is admitted, and admitted
/// agents participate equally — trust magnitude carries no further weight.
/// Moderately-distrusted collaborative raters (trust ~0.6) are therefore
/// admitted at full weight, which is exactly why the paper measured this
/// scheme as the worst of the four for rating aggregation (Rag 0.5985,
/// essentially the unweighted mean).
class OpinionAggregation final : public Aggregator {
 public:
  /// `admission_threshold` is the trust level above which a rater's
  /// opinion is accepted.
  explicit OpinionAggregation(double admission_threshold = 0.5);

  double aggregate(std::span<const TrustedRating> ratings) const override;
  std::string name() const override { return "opinion-trust-model"; }

 private:
  double admission_threshold_;
};

/// Known aggregation schemes, for configuration by name.
enum class AggregatorKind {
  kSimpleAverage,
  kBetaFunction,
  kModifiedWeightedAverage,
  kOpinionTrustModel,
};

/// Factory for the four schemes.
std::unique_ptr<Aggregator> make_aggregator(AggregatorKind kind);

}  // namespace trustrate::agg
