# Empty compiler generated dependencies file for marketplace_experiment_test.
# This may be replaced when dependencies are built.
