file(REMOVE_RECURSE
  "CMakeFiles/marketplace_experiment_test.dir/marketplace_experiment_test.cpp.o"
  "CMakeFiles/marketplace_experiment_test.dir/marketplace_experiment_test.cpp.o.d"
  "marketplace_experiment_test"
  "marketplace_experiment_test.pdb"
  "marketplace_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
