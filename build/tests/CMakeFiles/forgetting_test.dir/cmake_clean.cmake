file(REMOVE_RECURSE
  "CMakeFiles/forgetting_test.dir/forgetting_test.cpp.o"
  "CMakeFiles/forgetting_test.dir/forgetting_test.cpp.o.d"
  "forgetting_test"
  "forgetting_test.pdb"
  "forgetting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forgetting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
