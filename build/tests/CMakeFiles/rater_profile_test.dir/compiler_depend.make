# Empty compiler generated dependencies file for rater_profile_test.
# This may be replaced when dependencies are built.
