file(REMOVE_RECURSE
  "CMakeFiles/rater_profile_test.dir/rater_profile_test.cpp.o"
  "CMakeFiles/rater_profile_test.dir/rater_profile_test.cpp.o.d"
  "rater_profile_test"
  "rater_profile_test.pdb"
  "rater_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rater_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
