# Empty dependencies file for evaluation_io_test.
# This may be replaced when dependencies are built.
