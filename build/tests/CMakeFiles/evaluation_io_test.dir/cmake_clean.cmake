file(REMOVE_RECURSE
  "CMakeFiles/evaluation_io_test.dir/evaluation_io_test.cpp.o"
  "CMakeFiles/evaluation_io_test.dir/evaluation_io_test.cpp.o.d"
  "evaluation_io_test"
  "evaluation_io_test.pdb"
  "evaluation_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluation_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
