# Empty compiler generated dependencies file for cusum_test.
# This may be replaced when dependencies are built.
