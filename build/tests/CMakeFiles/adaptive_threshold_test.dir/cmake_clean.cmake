file(REMOVE_RECURSE
  "CMakeFiles/adaptive_threshold_test.dir/adaptive_threshold_test.cpp.o"
  "CMakeFiles/adaptive_threshold_test.dir/adaptive_threshold_test.cpp.o.d"
  "adaptive_threshold_test"
  "adaptive_threshold_test.pdb"
  "adaptive_threshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
