# Empty compiler generated dependencies file for adaptive_threshold_test.
# This may be replaced when dependencies are built.
