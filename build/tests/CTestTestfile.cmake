# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/adaptive_threshold_test[1]_include.cmake")
include("/root/repo/build/tests/agg_test[1]_include.cmake")
include("/root/repo/build/tests/churn_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/cusum_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/evaluation_io_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/forgetting_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/intervals_test[1]_include.cmake")
include("/root/repo/build/tests/marketplace_experiment_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/rater_profile_test[1]_include.cmake")
include("/root/repo/build/tests/signal_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/trust_test[1]_include.cmake")
