file(REMOVE_RECURSE
  "CMakeFiles/custom_trust_model.dir/custom_trust_model.cpp.o"
  "CMakeFiles/custom_trust_model.dir/custom_trust_model.cpp.o.d"
  "custom_trust_model"
  "custom_trust_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_trust_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
