# Empty compiler generated dependencies file for custom_trust_model.
# This may be replaced when dependencies are built.
