file(REMOVE_RECURSE
  "CMakeFiles/trustrate_cli.dir/trustrate_cli.cpp.o"
  "CMakeFiles/trustrate_cli.dir/trustrate_cli.cpp.o.d"
  "trustrate_cli"
  "trustrate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
