# Empty dependencies file for trustrate_cli.
# This may be replaced when dependencies are built.
