# Empty dependencies file for marketplace_simulation.
# This may be replaced when dependencies are built.
