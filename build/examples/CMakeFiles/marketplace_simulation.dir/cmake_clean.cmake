file(REMOVE_RECURSE
  "CMakeFiles/marketplace_simulation.dir/marketplace_simulation.cpp.o"
  "CMakeFiles/marketplace_simulation.dir/marketplace_simulation.cpp.o.d"
  "marketplace_simulation"
  "marketplace_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
