# Empty compiler generated dependencies file for netflix_trace_analysis.
# This may be replaced when dependencies are built.
