file(REMOVE_RECURSE
  "CMakeFiles/netflix_trace_analysis.dir/netflix_trace_analysis.cpp.o"
  "CMakeFiles/netflix_trace_analysis.dir/netflix_trace_analysis.cpp.o.d"
  "netflix_trace_analysis"
  "netflix_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netflix_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
