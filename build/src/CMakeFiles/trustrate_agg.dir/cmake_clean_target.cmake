file(REMOVE_RECURSE
  "libtrustrate_agg.a"
)
