
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/aggregator.cpp" "src/CMakeFiles/trustrate_agg.dir/agg/aggregator.cpp.o" "gcc" "src/CMakeFiles/trustrate_agg.dir/agg/aggregator.cpp.o.d"
  "/root/repo/src/agg/attack_power.cpp" "src/CMakeFiles/trustrate_agg.dir/agg/attack_power.cpp.o" "gcc" "src/CMakeFiles/trustrate_agg.dir/agg/attack_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trustrate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_trust.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
