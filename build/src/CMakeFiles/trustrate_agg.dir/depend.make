# Empty dependencies file for trustrate_agg.
# This may be replaced when dependencies are built.
