file(REMOVE_RECURSE
  "CMakeFiles/trustrate_agg.dir/agg/aggregator.cpp.o"
  "CMakeFiles/trustrate_agg.dir/agg/aggregator.cpp.o.d"
  "CMakeFiles/trustrate_agg.dir/agg/attack_power.cpp.o"
  "CMakeFiles/trustrate_agg.dir/agg/attack_power.cpp.o.d"
  "libtrustrate_agg.a"
  "libtrustrate_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
