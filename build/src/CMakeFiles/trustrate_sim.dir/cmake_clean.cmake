file(REMOVE_RECURSE
  "CMakeFiles/trustrate_sim.dir/sim/illustrative.cpp.o"
  "CMakeFiles/trustrate_sim.dir/sim/illustrative.cpp.o.d"
  "CMakeFiles/trustrate_sim.dir/sim/marketplace.cpp.o"
  "CMakeFiles/trustrate_sim.dir/sim/marketplace.cpp.o.d"
  "CMakeFiles/trustrate_sim.dir/sim/quality.cpp.o"
  "CMakeFiles/trustrate_sim.dir/sim/quality.cpp.o.d"
  "libtrustrate_sim.a"
  "libtrustrate_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
