# Empty compiler generated dependencies file for trustrate_sim.
# This may be replaced when dependencies are built.
