
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/illustrative.cpp" "src/CMakeFiles/trustrate_sim.dir/sim/illustrative.cpp.o" "gcc" "src/CMakeFiles/trustrate_sim.dir/sim/illustrative.cpp.o.d"
  "/root/repo/src/sim/marketplace.cpp" "src/CMakeFiles/trustrate_sim.dir/sim/marketplace.cpp.o" "gcc" "src/CMakeFiles/trustrate_sim.dir/sim/marketplace.cpp.o.d"
  "/root/repo/src/sim/quality.cpp" "src/CMakeFiles/trustrate_sim.dir/sim/quality.cpp.o" "gcc" "src/CMakeFiles/trustrate_sim.dir/sim/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trustrate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
