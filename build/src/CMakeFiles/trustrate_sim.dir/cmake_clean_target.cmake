file(REMOVE_RECURSE
  "libtrustrate_sim.a"
)
