# Empty compiler generated dependencies file for trustrate_core.
# This may be replaced when dependencies are built.
