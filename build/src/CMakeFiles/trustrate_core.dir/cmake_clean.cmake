file(REMOVE_RECURSE
  "CMakeFiles/trustrate_core.dir/core/evaluation.cpp.o"
  "CMakeFiles/trustrate_core.dir/core/evaluation.cpp.o.d"
  "CMakeFiles/trustrate_core.dir/core/marketplace_experiment.cpp.o"
  "CMakeFiles/trustrate_core.dir/core/marketplace_experiment.cpp.o.d"
  "CMakeFiles/trustrate_core.dir/core/metrics.cpp.o"
  "CMakeFiles/trustrate_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/trustrate_core.dir/core/streaming.cpp.o"
  "CMakeFiles/trustrate_core.dir/core/streaming.cpp.o.d"
  "CMakeFiles/trustrate_core.dir/core/system.cpp.o"
  "CMakeFiles/trustrate_core.dir/core/system.cpp.o.d"
  "libtrustrate_core.a"
  "libtrustrate_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
