file(REMOVE_RECURSE
  "libtrustrate_core.a"
)
