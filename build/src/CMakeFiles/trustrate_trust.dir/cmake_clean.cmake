file(REMOVE_RECURSE
  "CMakeFiles/trustrate_trust.dir/trust/forgetting.cpp.o"
  "CMakeFiles/trustrate_trust.dir/trust/forgetting.cpp.o.d"
  "CMakeFiles/trustrate_trust.dir/trust/opinion.cpp.o"
  "CMakeFiles/trustrate_trust.dir/trust/opinion.cpp.o.d"
  "CMakeFiles/trustrate_trust.dir/trust/propagation.cpp.o"
  "CMakeFiles/trustrate_trust.dir/trust/propagation.cpp.o.d"
  "CMakeFiles/trustrate_trust.dir/trust/rater_profile.cpp.o"
  "CMakeFiles/trustrate_trust.dir/trust/rater_profile.cpp.o.d"
  "CMakeFiles/trustrate_trust.dir/trust/record.cpp.o"
  "CMakeFiles/trustrate_trust.dir/trust/record.cpp.o.d"
  "CMakeFiles/trustrate_trust.dir/trust/store_io.cpp.o"
  "CMakeFiles/trustrate_trust.dir/trust/store_io.cpp.o.d"
  "libtrustrate_trust.a"
  "libtrustrate_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
