file(REMOVE_RECURSE
  "libtrustrate_trust.a"
)
