# Empty compiler generated dependencies file for trustrate_trust.
# This may be replaced when dependencies are built.
