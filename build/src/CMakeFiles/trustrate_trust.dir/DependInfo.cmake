
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trust/forgetting.cpp" "src/CMakeFiles/trustrate_trust.dir/trust/forgetting.cpp.o" "gcc" "src/CMakeFiles/trustrate_trust.dir/trust/forgetting.cpp.o.d"
  "/root/repo/src/trust/opinion.cpp" "src/CMakeFiles/trustrate_trust.dir/trust/opinion.cpp.o" "gcc" "src/CMakeFiles/trustrate_trust.dir/trust/opinion.cpp.o.d"
  "/root/repo/src/trust/propagation.cpp" "src/CMakeFiles/trustrate_trust.dir/trust/propagation.cpp.o" "gcc" "src/CMakeFiles/trustrate_trust.dir/trust/propagation.cpp.o.d"
  "/root/repo/src/trust/rater_profile.cpp" "src/CMakeFiles/trustrate_trust.dir/trust/rater_profile.cpp.o" "gcc" "src/CMakeFiles/trustrate_trust.dir/trust/rater_profile.cpp.o.d"
  "/root/repo/src/trust/record.cpp" "src/CMakeFiles/trustrate_trust.dir/trust/record.cpp.o" "gcc" "src/CMakeFiles/trustrate_trust.dir/trust/record.cpp.o.d"
  "/root/repo/src/trust/store_io.cpp" "src/CMakeFiles/trustrate_trust.dir/trust/store_io.cpp.o" "gcc" "src/CMakeFiles/trustrate_trust.dir/trust/store_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trustrate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
