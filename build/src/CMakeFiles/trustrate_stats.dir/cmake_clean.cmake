file(REMOVE_RECURSE
  "CMakeFiles/trustrate_stats.dir/stats/descriptive.cpp.o"
  "CMakeFiles/trustrate_stats.dir/stats/descriptive.cpp.o.d"
  "CMakeFiles/trustrate_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/trustrate_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/trustrate_stats.dir/stats/intervals.cpp.o"
  "CMakeFiles/trustrate_stats.dir/stats/intervals.cpp.o.d"
  "CMakeFiles/trustrate_stats.dir/stats/moving.cpp.o"
  "CMakeFiles/trustrate_stats.dir/stats/moving.cpp.o.d"
  "CMakeFiles/trustrate_stats.dir/stats/special.cpp.o"
  "CMakeFiles/trustrate_stats.dir/stats/special.cpp.o.d"
  "CMakeFiles/trustrate_stats.dir/stats/whiteness.cpp.o"
  "CMakeFiles/trustrate_stats.dir/stats/whiteness.cpp.o.d"
  "libtrustrate_stats.a"
  "libtrustrate_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
