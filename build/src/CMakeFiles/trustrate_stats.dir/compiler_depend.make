# Empty compiler generated dependencies file for trustrate_stats.
# This may be replaced when dependencies are built.
