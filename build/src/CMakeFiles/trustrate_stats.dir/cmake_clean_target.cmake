file(REMOVE_RECURSE
  "libtrustrate_stats.a"
)
