
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/trustrate_stats.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/trustrate_stats.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/trustrate_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/trustrate_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/intervals.cpp" "src/CMakeFiles/trustrate_stats.dir/stats/intervals.cpp.o" "gcc" "src/CMakeFiles/trustrate_stats.dir/stats/intervals.cpp.o.d"
  "/root/repo/src/stats/moving.cpp" "src/CMakeFiles/trustrate_stats.dir/stats/moving.cpp.o" "gcc" "src/CMakeFiles/trustrate_stats.dir/stats/moving.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/CMakeFiles/trustrate_stats.dir/stats/special.cpp.o" "gcc" "src/CMakeFiles/trustrate_stats.dir/stats/special.cpp.o.d"
  "/root/repo/src/stats/whiteness.cpp" "src/CMakeFiles/trustrate_stats.dir/stats/whiteness.cpp.o" "gcc" "src/CMakeFiles/trustrate_stats.dir/stats/whiteness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trustrate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
