file(REMOVE_RECURSE
  "CMakeFiles/trustrate_signal.dir/signal/ar.cpp.o"
  "CMakeFiles/trustrate_signal.dir/signal/ar.cpp.o.d"
  "CMakeFiles/trustrate_signal.dir/signal/matrix.cpp.o"
  "CMakeFiles/trustrate_signal.dir/signal/matrix.cpp.o.d"
  "CMakeFiles/trustrate_signal.dir/signal/spectrum.cpp.o"
  "CMakeFiles/trustrate_signal.dir/signal/spectrum.cpp.o.d"
  "CMakeFiles/trustrate_signal.dir/signal/window.cpp.o"
  "CMakeFiles/trustrate_signal.dir/signal/window.cpp.o.d"
  "libtrustrate_signal.a"
  "libtrustrate_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
