# Empty dependencies file for trustrate_signal.
# This may be replaced when dependencies are built.
