file(REMOVE_RECURSE
  "libtrustrate_signal.a"
)
