file(REMOVE_RECURSE
  "CMakeFiles/trustrate_data.dir/data/inject.cpp.o"
  "CMakeFiles/trustrate_data.dir/data/inject.cpp.o.d"
  "CMakeFiles/trustrate_data.dir/data/netflix_like.cpp.o"
  "CMakeFiles/trustrate_data.dir/data/netflix_like.cpp.o.d"
  "CMakeFiles/trustrate_data.dir/data/trace.cpp.o"
  "CMakeFiles/trustrate_data.dir/data/trace.cpp.o.d"
  "libtrustrate_data.a"
  "libtrustrate_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
