file(REMOVE_RECURSE
  "libtrustrate_data.a"
)
