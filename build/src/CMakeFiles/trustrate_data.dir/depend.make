# Empty dependencies file for trustrate_data.
# This may be replaced when dependencies are built.
