file(REMOVE_RECURSE
  "libtrustrate_common.a"
)
