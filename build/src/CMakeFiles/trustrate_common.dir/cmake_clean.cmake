file(REMOVE_RECURSE
  "CMakeFiles/trustrate_common.dir/common/csv.cpp.o"
  "CMakeFiles/trustrate_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/trustrate_common.dir/common/error.cpp.o"
  "CMakeFiles/trustrate_common.dir/common/error.cpp.o.d"
  "CMakeFiles/trustrate_common.dir/common/math.cpp.o"
  "CMakeFiles/trustrate_common.dir/common/math.cpp.o.d"
  "CMakeFiles/trustrate_common.dir/common/rng.cpp.o"
  "CMakeFiles/trustrate_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/trustrate_common.dir/common/types.cpp.o"
  "CMakeFiles/trustrate_common.dir/common/types.cpp.o.d"
  "libtrustrate_common.a"
  "libtrustrate_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
