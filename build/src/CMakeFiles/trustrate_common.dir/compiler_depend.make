# Empty compiler generated dependencies file for trustrate_common.
# This may be replaced when dependencies are built.
