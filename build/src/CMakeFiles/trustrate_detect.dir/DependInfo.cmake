
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/adaptive_threshold.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/adaptive_threshold.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/adaptive_threshold.cpp.o.d"
  "/root/repo/src/detect/ar_detector.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/ar_detector.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/ar_detector.cpp.o.d"
  "/root/repo/src/detect/beta_filter.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/beta_filter.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/beta_filter.cpp.o.d"
  "/root/repo/src/detect/cluster_filter.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/cluster_filter.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/cluster_filter.cpp.o.d"
  "/root/repo/src/detect/cusum_detector.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/cusum_detector.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/cusum_detector.cpp.o.d"
  "/root/repo/src/detect/endorsement_filter.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/endorsement_filter.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/endorsement_filter.cpp.o.d"
  "/root/repo/src/detect/entropy_filter.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/entropy_filter.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/entropy_filter.cpp.o.d"
  "/root/repo/src/detect/filter.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/filter.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/filter.cpp.o.d"
  "/root/repo/src/detect/rate_detector.cpp" "src/CMakeFiles/trustrate_detect.dir/detect/rate_detector.cpp.o" "gcc" "src/CMakeFiles/trustrate_detect.dir/detect/rate_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trustrate_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
