file(REMOVE_RECURSE
  "libtrustrate_detect.a"
)
