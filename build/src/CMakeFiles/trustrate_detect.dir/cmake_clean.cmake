file(REMOVE_RECURSE
  "CMakeFiles/trustrate_detect.dir/detect/adaptive_threshold.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/adaptive_threshold.cpp.o.d"
  "CMakeFiles/trustrate_detect.dir/detect/ar_detector.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/ar_detector.cpp.o.d"
  "CMakeFiles/trustrate_detect.dir/detect/beta_filter.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/beta_filter.cpp.o.d"
  "CMakeFiles/trustrate_detect.dir/detect/cluster_filter.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/cluster_filter.cpp.o.d"
  "CMakeFiles/trustrate_detect.dir/detect/cusum_detector.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/cusum_detector.cpp.o.d"
  "CMakeFiles/trustrate_detect.dir/detect/endorsement_filter.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/endorsement_filter.cpp.o.d"
  "CMakeFiles/trustrate_detect.dir/detect/entropy_filter.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/entropy_filter.cpp.o.d"
  "CMakeFiles/trustrate_detect.dir/detect/filter.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/filter.cpp.o.d"
  "CMakeFiles/trustrate_detect.dir/detect/rate_detector.cpp.o"
  "CMakeFiles/trustrate_detect.dir/detect/rate_detector.cpp.o.d"
  "libtrustrate_detect.a"
  "libtrustrate_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrate_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
