# Empty dependencies file for trustrate_detect.
# This may be replaced when dependencies are built.
