file(REMOVE_RECURSE
  "CMakeFiles/tab01_illustrative_detection.dir/tab01_illustrative_detection.cpp.o"
  "CMakeFiles/tab01_illustrative_detection.dir/tab01_illustrative_detection.cpp.o.d"
  "tab01_illustrative_detection"
  "tab01_illustrative_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_illustrative_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
