# Empty compiler generated dependencies file for tab01_illustrative_detection.
# This may be replaced when dependencies are built.
