# Empty compiler generated dependencies file for ablation_burst_bias020.
# This may be replaced when dependencies are built.
