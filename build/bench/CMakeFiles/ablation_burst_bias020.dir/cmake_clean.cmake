file(REMOVE_RECURSE
  "CMakeFiles/ablation_burst_bias020.dir/ablation_burst_bias020.cpp.o"
  "CMakeFiles/ablation_burst_bias020.dir/ablation_burst_bias020.cpp.o.d"
  "ablation_burst_bias020"
  "ablation_burst_bias020.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_burst_bias020.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
