file(REMOVE_RECURSE
  "CMakeFiles/fig11_dishonest_products_bias015.dir/fig11_dishonest_products_bias015.cpp.o"
  "CMakeFiles/fig11_dishonest_products_bias015.dir/fig11_dishonest_products_bias015.cpp.o.d"
  "fig11_dishonest_products_bias015"
  "fig11_dishonest_products_bias015.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_dishonest_products_bias015.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
