# Empty compiler generated dependencies file for fig11_dishonest_products_bias015.
# This may be replaced when dependencies are built.
