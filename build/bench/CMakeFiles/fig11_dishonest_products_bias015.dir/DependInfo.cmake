
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_dishonest_products_bias015.cpp" "bench/CMakeFiles/fig11_dishonest_products_bias015.dir/fig11_dishonest_products_bias015.cpp.o" "gcc" "bench/CMakeFiles/fig11_dishonest_products_bias015.dir/fig11_dishonest_products_bias015.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trustrate_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trustrate_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
