# Empty compiler generated dependencies file for ablation_threshold_roc.
# This may be replaced when dependencies are built.
