file(REMOVE_RECURSE
  "CMakeFiles/ablation_threshold_roc.dir/ablation_threshold_roc.cpp.o"
  "CMakeFiles/ablation_threshold_roc.dir/ablation_threshold_roc.cpp.o.d"
  "ablation_threshold_roc"
  "ablation_threshold_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_threshold_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
