# Empty compiler generated dependencies file for tab02_aggregation_comparison.
# This may be replaced when dependencies are built.
