file(REMOVE_RECURSE
  "CMakeFiles/tab02_aggregation_comparison.dir/tab02_aggregation_comparison.cpp.o"
  "CMakeFiles/tab02_aggregation_comparison.dir/tab02_aggregation_comparison.cpp.o.d"
  "tab02_aggregation_comparison"
  "tab02_aggregation_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_aggregation_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
