# Empty dependencies file for fig03_histogram.
# This may be replaced when dependencies are built.
