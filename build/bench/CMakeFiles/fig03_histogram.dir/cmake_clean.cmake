file(REMOVE_RECURSE
  "CMakeFiles/fig03_histogram.dir/fig03_histogram.cpp.o"
  "CMakeFiles/fig03_histogram.dir/fig03_histogram.cpp.o.d"
  "fig03_histogram"
  "fig03_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
