# Empty compiler generated dependencies file for fig06_trust_evolution.
# This may be replaced when dependencies are built.
