file(REMOVE_RECURSE
  "CMakeFiles/fig06_trust_evolution.dir/fig06_trust_evolution.cpp.o"
  "CMakeFiles/fig06_trust_evolution.dir/fig06_trust_evolution.cpp.o.d"
  "fig06_trust_evolution"
  "fig06_trust_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_trust_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
