# Empty dependencies file for ablation_debiasing.
# This may be replaced when dependencies are built.
