file(REMOVE_RECURSE
  "CMakeFiles/ablation_debiasing.dir/ablation_debiasing.cpp.o"
  "CMakeFiles/ablation_debiasing.dir/ablation_debiasing.cpp.o.d"
  "ablation_debiasing"
  "ablation_debiasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_debiasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
