file(REMOVE_RECURSE
  "CMakeFiles/tab03_attack_power_analysis.dir/tab03_attack_power_analysis.cpp.o"
  "CMakeFiles/tab03_attack_power_analysis.dir/tab03_attack_power_analysis.cpp.o.d"
  "tab03_attack_power_analysis"
  "tab03_attack_power_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_attack_power_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
