# Empty compiler generated dependencies file for tab03_attack_power_analysis.
# This may be replaced when dependencies are built.
