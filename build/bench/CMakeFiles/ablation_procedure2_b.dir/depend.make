# Empty dependencies file for ablation_procedure2_b.
# This may be replaced when dependencies are built.
