file(REMOVE_RECURSE
  "CMakeFiles/ablation_procedure2_b.dir/ablation_procedure2_b.cpp.o"
  "CMakeFiles/ablation_procedure2_b.dir/ablation_procedure2_b.cpp.o.d"
  "ablation_procedure2_b"
  "ablation_procedure2_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_procedure2_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
