# Empty dependencies file for ablation_baseline_detectors.
# This may be replaced when dependencies are built.
