file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_detectors.dir/ablation_baseline_detectors.cpp.o"
  "CMakeFiles/ablation_baseline_detectors.dir/ablation_baseline_detectors.cpp.o.d"
  "ablation_baseline_detectors"
  "ablation_baseline_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
