# Empty compiler generated dependencies file for ablation_adaptive_attacks.
# This may be replaced when dependencies are built.
