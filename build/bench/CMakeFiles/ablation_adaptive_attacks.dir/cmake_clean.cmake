file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_attacks.dir/ablation_adaptive_attacks.cpp.o"
  "CMakeFiles/ablation_adaptive_attacks.dir/ablation_adaptive_attacks.cpp.o.d"
  "ablation_adaptive_attacks"
  "ablation_adaptive_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
