# Empty compiler generated dependencies file for ablation_adaptive_threshold.
# This may be replaced when dependencies are built.
