file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_threshold.dir/ablation_adaptive_threshold.cpp.o"
  "CMakeFiles/ablation_adaptive_threshold.dir/ablation_adaptive_threshold.cpp.o.d"
  "ablation_adaptive_threshold"
  "ablation_adaptive_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
