# Empty dependencies file for fig10_honest_products.
# This may be replaced when dependencies are built.
