file(REMOVE_RECURSE
  "CMakeFiles/fig10_honest_products.dir/fig10_honest_products.cpp.o"
  "CMakeFiles/fig10_honest_products.dir/fig10_honest_products.cpp.o.d"
  "fig10_honest_products"
  "fig10_honest_products.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_honest_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
