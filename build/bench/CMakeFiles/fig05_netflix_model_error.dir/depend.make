# Empty dependencies file for fig05_netflix_model_error.
# This may be replaced when dependencies are built.
