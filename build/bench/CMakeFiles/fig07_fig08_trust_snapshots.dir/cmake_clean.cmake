file(REMOVE_RECURSE
  "CMakeFiles/fig07_fig08_trust_snapshots.dir/fig07_fig08_trust_snapshots.cpp.o"
  "CMakeFiles/fig07_fig08_trust_snapshots.dir/fig07_fig08_trust_snapshots.cpp.o.d"
  "fig07_fig08_trust_snapshots"
  "fig07_fig08_trust_snapshots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fig08_trust_snapshots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
