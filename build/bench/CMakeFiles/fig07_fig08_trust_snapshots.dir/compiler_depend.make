# Empty compiler generated dependencies file for fig07_fig08_trust_snapshots.
# This may be replaced when dependencies are built.
