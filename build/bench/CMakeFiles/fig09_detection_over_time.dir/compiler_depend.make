# Empty compiler generated dependencies file for fig09_detection_over_time.
# This may be replaced when dependencies are built.
