file(REMOVE_RECURSE
  "CMakeFiles/fig12_dishonest_products_bias020.dir/fig12_dishonest_products_bias020.cpp.o"
  "CMakeFiles/fig12_dishonest_products_bias020.dir/fig12_dishonest_products_bias020.cpp.o.d"
  "fig12_dishonest_products_bias020"
  "fig12_dishonest_products_bias020.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dishonest_products_bias020.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
