# Empty dependencies file for fig12_dishonest_products_bias020.
# This may be replaced when dependencies are built.
