file(REMOVE_RECURSE
  "CMakeFiles/fig02_raw_ratings.dir/fig02_raw_ratings.cpp.o"
  "CMakeFiles/fig02_raw_ratings.dir/fig02_raw_ratings.cpp.o.d"
  "fig02_raw_ratings"
  "fig02_raw_ratings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_raw_ratings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
