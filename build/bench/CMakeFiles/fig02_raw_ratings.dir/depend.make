# Empty dependencies file for fig02_raw_ratings.
# This may be replaced when dependencies are built.
