file(REMOVE_RECURSE
  "CMakeFiles/fig04_moving_average_model_error.dir/fig04_moving_average_model_error.cpp.o"
  "CMakeFiles/fig04_moving_average_model_error.dir/fig04_moving_average_model_error.cpp.o.d"
  "fig04_moving_average_model_error"
  "fig04_moving_average_model_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_moving_average_model_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
