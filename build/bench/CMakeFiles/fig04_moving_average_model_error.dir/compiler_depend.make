# Empty compiler generated dependencies file for fig04_moving_average_model_error.
# This may be replaced when dependencies are built.
