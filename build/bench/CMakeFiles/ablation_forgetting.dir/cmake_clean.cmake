file(REMOVE_RECURSE
  "CMakeFiles/ablation_forgetting.dir/ablation_forgetting.cpp.o"
  "CMakeFiles/ablation_forgetting.dir/ablation_forgetting.cpp.o.d"
  "ablation_forgetting"
  "ablation_forgetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forgetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
