# Empty compiler generated dependencies file for ablation_forgetting.
# This may be replaced when dependencies are built.
