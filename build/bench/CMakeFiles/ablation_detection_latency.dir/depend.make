# Empty dependencies file for ablation_detection_latency.
# This may be replaced when dependencies are built.
