# Empty compiler generated dependencies file for micro_ar_estimation.
# This may be replaced when dependencies are built.
