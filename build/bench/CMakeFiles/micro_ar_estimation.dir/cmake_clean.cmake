file(REMOVE_RECURSE
  "CMakeFiles/micro_ar_estimation.dir/micro_ar_estimation.cpp.o"
  "CMakeFiles/micro_ar_estimation.dir/micro_ar_estimation.cpp.o.d"
  "micro_ar_estimation"
  "micro_ar_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ar_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
