# Empty dependencies file for ablation_detector_input.
# This may be replaced when dependencies are built.
