file(REMOVE_RECURSE
  "CMakeFiles/ablation_detector_input.dir/ablation_detector_input.cpp.o"
  "CMakeFiles/ablation_detector_input.dir/ablation_detector_input.cpp.o.d"
  "ablation_detector_input"
  "ablation_detector_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_detector_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
