file(REMOVE_RECURSE
  "CMakeFiles/ablation_combined_detectors.dir/ablation_combined_detectors.cpp.o"
  "CMakeFiles/ablation_combined_detectors.dir/ablation_combined_detectors.cpp.o.d"
  "ablation_combined_detectors"
  "ablation_combined_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combined_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
