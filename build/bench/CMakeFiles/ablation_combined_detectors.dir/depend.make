# Empty dependencies file for ablation_combined_detectors.
# This may be replaced when dependencies are built.
