// Equation (1) reproduction: the collaborative-population threshold under
// simple averaging, plus a Monte-Carlo check with noisy honest raters.
//
// Paper example (5-level scale, quality 3, target 3.5):
//   strategy 1 (rate 5): M > N/3      strategy 2 (rate 4): M > N
#include <cstdio>

#include "agg/attack_power.hpp"
#include "common/rng.hpp"

using namespace trustrate;

int main() {
  std::printf("=== Tab. 3: eq.(1) attack power under simple averaging ===\n");
  std::printf("quality 3.0, target 3.5 on a 1-5 scale\n\n");
  std::printf("honest_N,min_M_rating5,min_M_rating4\n");
  for (long long n : {30, 60, 90, 300, 900}) {
    std::printf("%lld,%lld,%lld\n", n,
                agg::min_attackers_to_boost(3.0, n, 5.0, 3.5),
                agg::min_attackers_to_boost(3.0, n, 4.0, 3.5));
  }

  // Monte-Carlo check: with the analytic minimum M the average strictly
  // exceeds the target; with M-1 it does not (noise-free case).
  std::printf("\nanalytic check with N=90: ");
  const long long m5 = agg::min_attackers_to_boost(3.0, 90, 5.0, 3.5);
  const double at_m = agg::averaged_rating(3.0, 90, 5.0, m5);
  const double below_m = agg::averaged_rating(3.0, 90, 5.0, m5 - 1);
  std::printf("M=%lld gives %.4f (> 3.5: %s), M-1 gives %.4f (> 3.5: %s)\n", m5,
              at_m, at_m > 3.5 ? "yes" : "no", below_m,
              below_m > 3.5 ? "yes" : "no");

  // Noisy honest ratings do not change the expectation.
  Rng rng(7);
  double sum = 0.0;
  constexpr int kRuns = 2000;
  for (int run = 0; run < kRuns; ++run) {
    double acc = 0.0;
    for (int i = 0; i < 90; ++i) acc += rng.gaussian(3.0, 0.5);
    for (long long i = 0; i < m5; ++i) acc += 5.0;
    sum += acc / (90 + m5);
  }
  std::printf("Monte-Carlo with noisy honest ratings (sigma 0.5): mean %.4f\n",
              sum / kRuns);
  return 0;
}
