// Ablation: why Fig. 12 (bias_shift2 = 0.2) is the hard case, and what
// recovers it.
//
// The residual-variance statistic detects collaborative blocks through the
// variance collapse they cause. At bias 0.2 the attacker-honest mean gap
// itself contributes share*(1-share)*0.04 of i.i.d. mixture variance that
// no AR model can predict away, so with attackers spread uniformly over
// the 10-day window (the paper's literal daily-coin model) the window
// error stays near the honest baseline and detection degrades.
//
// Real recruitment campaigns are bursty: recruits act within a day or two
// of being contacted. A burst concentrates the collaborative mass, which
// (a) spikes the arrival rate and (b) deepens the variance collapse. A
// narrow, volume-gated detector (3-day windows, evaluated only when the
// window is anomalously dense) then recovers paper-level protection.
//
// Three conditions, all at bias 0.2, a1 = 8:
//   A. spread attack, default detector   (the fig12 configuration)
//   B. burst attack,  default detector   (burst evades wide windows)
//   C. burst attack,  volume-gated narrow detector
#include <cmath>
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

namespace {

struct Outcome {
  double pc_detection_m12 = 0.0;
  double fa_honest_m12 = 0.0;
  double weighted_dev = 0.0;
  double simple_dev = 0.0;
};

Outcome run(bool burst, bool gated_detector) {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.a1 = 8.0;
  cfg.market.a2 = 0.5;
  cfg.market.bias_shift2 = 0.2;
  cfg.market.recruit_burst = burst;
  cfg.system = core::default_marketplace_system_config();
  if (gated_detector) {
    cfg.system.ar.window_days = 3.0;
    cfg.system.ar.step_days = 1.5;
    cfg.system.ar.min_ratings = 60;       // only anomalously dense windows
    cfg.system.ar.error_threshold = 0.03; // gate carries the specificity
  }
  const auto result = core::run_marketplace_experiment(cfg);

  Outcome out;
  const auto& last = result.months.back();
  out.pc_detection_m12 = last.detection_pc;
  out.fa_honest_m12 = last.false_alarm_reliable;
  int dishonest = 0;
  for (const auto& a : result.aggregates) {
    if (!a.dishonest) continue;
    ++dishonest;
    out.weighted_dev += std::fabs(a.weighted - a.quality);
    out.simple_dev += std::fabs(a.simple_average - a.quality);
  }
  out.weighted_dev /= dishonest;
  out.simple_dev /= dishonest;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: bias 0.2 attacks vs recruitment temporality ===\n");
  std::printf(
      "condition,pc_detection_m12,fa_reliable_m12,mean_dev_weighted,mean_dev_simple\n");
  const Outcome a = run(/*burst=*/false, /*gated=*/false);
  std::printf("A spread+default,%.3f,%.3f,%.4f,%.4f\n", a.pc_detection_m12,
              a.fa_honest_m12, a.weighted_dev, a.simple_dev);
  const Outcome b = run(/*burst=*/true, /*gated=*/false);
  std::printf("B burst+default,%.3f,%.3f,%.4f,%.4f\n", b.pc_detection_m12,
              b.fa_honest_m12, b.weighted_dev, b.simple_dev);
  const Outcome c = run(/*burst=*/true, /*gated=*/true);
  std::printf("C burst+volume-gated,%.3f,%.3f,%.4f,%.4f\n", c.pc_detection_m12,
              c.fa_honest_m12, c.weighted_dev, c.simple_dev);
  return 0;
}
