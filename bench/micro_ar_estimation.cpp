// Micro-benchmarks: cost of the AR estimators vs window length and model
// order, plus the end-to-end detector and filter on realistic windows.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "signal/ar.hpp"
#include "signal/ar_incremental.hpp"
#include "signal/window.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

namespace {

std::vector<double> noise(std::size_t n) {
  Rng rng(1);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.gaussian(0.5, 0.2);
  return xs;
}

RatingSeries noise_series(std::size_t n) {
  Rng rng(1);
  RatingSeries series(n);
  for (std::size_t i = 0; i < n; ++i) {
    series[i].time = static_cast<double>(i) * 0.1;
    series[i].value = rng.gaussian(0.5, 0.2);
    series[i].rater = static_cast<RaterId>(i % 97);
  }
  return series;
}

void BM_FitCovariance(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  const int order = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fit_ar_covariance(xs, order));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitCovariance)
    ->Args({50, 4})
    ->Args({200, 4})
    ->Args({1000, 4})
    ->Args({200, 2})
    ->Args({200, 8})
    ->Args({200, 16});

void BM_FitAutocorrelation(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fit_ar_autocorrelation(xs, 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitAutocorrelation)->Arg(50)->Arg(200)->Arg(1000);

void BM_FitBurg(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fit_ar_burg(xs, 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitBurg)->Arg(50)->Arg(200)->Arg(1000);

// --- sliding-fit pair: the pre-PR hot path vs the incremental estimator ---
//
// Both sweep the same 50%-overlap count windows (range(1)-rating windows
// stepping by half) over a range(0)-rating series; items processed = windows
// fitted, so ns_per_op is directly the per-window fit cost. The perf-smoke
// CI gate compares the two p50s; the ISSUE 7 acceptance bar is >= 5x at
// 50/25.

void BM_SlidingFitScratch(benchmark::State& state) {
  const auto series = noise_series(static_cast<std::size_t>(state.range(0)));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto windows = signal::make_count_windows(series.size(), window, window / 2);
  std::size_t fitted = 0;
  for (auto _ : state) {
    // Faithful replica of the detector loop before the incremental path:
    // copy the window's values, then the naive covariance fit (strided
    // c(i, j) passes, Matrix allocations).
    for (const auto& w : windows) {
      std::vector<double> values;
      values.reserve(w.size());
      for (std::size_t i = w.begin; i < w.end; ++i) {
        values.push_back(series[i].value);
      }
      benchmark::DoNotOptimize(signal::fit_ar_covariance(values, 4));
      ++fitted;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fitted));
}
BENCHMARK(BM_SlidingFitScratch)->Args({5000, 50})->Args({5000, 200});

void BM_SlidingFitCanonical(benchmark::State& state) {
  const auto series = noise_series(static_cast<std::size_t>(state.range(0)));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto windows = signal::make_count_windows(series.size(), window, window / 2);
  signal::CovWorkspace ws;
  std::vector<double> values;
  std::size_t fitted = 0;
  for (auto _ : state) {
    for (const auto& w : windows) {
      values.clear();
      for (std::size_t i = w.begin; i < w.end; ++i) {
        values.push_back(series[i].value);
      }
      benchmark::DoNotOptimize(signal::fit_cov_scratch(values, 4, ws));
      ++fitted;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fitted));
}
BENCHMARK(BM_SlidingFitCanonical)->Args({5000, 50})->Args({5000, 200});

void BM_SlidingFitIncremental(benchmark::State& state) {
  const auto series = noise_series(static_cast<std::size_t>(state.range(0)));
  const auto window = static_cast<std::size_t>(state.range(1));
  const auto windows = signal::make_count_windows(series.size(), window, window / 2);
  signal::SlidingCovarianceEstimator est;
  signal::CovWorkspace ws;
  std::size_t fitted = 0;
  for (auto _ : state) {
    est.begin_series(4, window);
    for (const auto& w : windows) {
      est.advance(series, w.begin, w.end);
      benchmark::DoNotOptimize(est.fit(ws));
      ++fitted;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fitted));
}
BENCHMARK(BM_SlidingFitIncremental)->Args({5000, 50})->Args({5000, 200});

// Detector-level pair on the paper's 10/5-day time windows: the whole
// analyze_into pipeline with the incremental path on vs off.
void BM_DetectorSlidingWindows(benchmark::State& state) {
  sim::IllustrativeConfig cfg;
  cfg.simu_time = 360.0;
  Rng rng(2);
  const RatingSeries series = sim::generate_illustrative(cfg, rng);
  detect::ArDetectorConfig det_cfg;
  det_cfg.window_days = 10.0;
  det_cfg.step_days = 5.0;
  det_cfg.incremental = state.range(0) != 0;
  const detect::ArSuspicionDetector det(det_cfg);
  detect::ArScratch scratch;
  detect::SuspicionResult result;
  for (auto _ : state) {
    det.analyze_into(series, 0.0, cfg.simu_time, scratch, result);
    benchmark::DoNotOptimize(result.windows.size());
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(BM_DetectorSlidingWindows)->Arg(1)->Arg(0);

void BM_DetectorAnalyze(benchmark::State& state) {
  sim::IllustrativeConfig cfg;
  cfg.simu_time = static_cast<double>(state.range(0));
  Rng rng(2);
  const RatingSeries series = sim::generate_illustrative(cfg, rng);
  detect::ArDetectorConfig det_cfg;
  det_cfg.window_days = 10.0;
  det_cfg.step_days = 5.0;
  const detect::ArSuspicionDetector det(det_cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.analyze(series, 0.0, cfg.simu_time));
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(BM_DetectorAnalyze)->Arg(60)->Arg(360)->Arg(1440);

void BM_BetaFilter(benchmark::State& state) {
  sim::IllustrativeConfig cfg;
  cfg.simu_time = static_cast<double>(state.range(0));
  Rng rng(3);
  const RatingSeries series = sim::generate_illustrative(cfg, rng);
  const detect::BetaQuantileFilter filter({.q = 0.05});
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.filter(series));
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(BM_BetaFilter)->Arg(60)->Arg(360);

}  // namespace

TRUSTRATE_BENCH_MAIN("micro_ar_estimation");
