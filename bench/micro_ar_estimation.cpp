// Micro-benchmarks: cost of the AR estimators vs window length and model
// order, plus the end-to-end detector and filter on realistic windows.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "signal/ar.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

namespace {

std::vector<double> noise(std::size_t n) {
  Rng rng(1);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.gaussian(0.5, 0.2);
  return xs;
}

void BM_FitCovariance(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  const int order = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fit_ar_covariance(xs, order));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitCovariance)
    ->Args({50, 4})
    ->Args({200, 4})
    ->Args({1000, 4})
    ->Args({200, 2})
    ->Args({200, 8})
    ->Args({200, 16});

void BM_FitAutocorrelation(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fit_ar_autocorrelation(xs, 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitAutocorrelation)->Arg(50)->Arg(200)->Arg(1000);

void BM_FitBurg(benchmark::State& state) {
  const auto xs = noise(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::fit_ar_burg(xs, 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitBurg)->Arg(50)->Arg(200)->Arg(1000);

void BM_DetectorAnalyze(benchmark::State& state) {
  sim::IllustrativeConfig cfg;
  cfg.simu_time = static_cast<double>(state.range(0));
  Rng rng(2);
  const RatingSeries series = sim::generate_illustrative(cfg, rng);
  detect::ArDetectorConfig det_cfg;
  det_cfg.window_days = 10.0;
  det_cfg.step_days = 5.0;
  const detect::ArSuspicionDetector det(det_cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.analyze(series, 0.0, cfg.simu_time));
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(BM_DetectorAnalyze)->Arg(60)->Arg(360)->Arg(1440);

void BM_BetaFilter(benchmark::State& state) {
  sim::IllustrativeConfig cfg;
  cfg.simu_time = static_cast<double>(state.range(0));
  Rng rng(3);
  const RatingSeries series = sim::generate_illustrative(cfg, rng);
  const detect::BetaQuantileFilter filter({.q = 0.05});
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.filter(series));
  }
  state.SetItemsProcessed(state.iterations() * series.size());
}
BENCHMARK(BM_BetaFilter)->Arg(60)->Arg(360);

}  // namespace

TRUSTRATE_BENCH_MAIN("micro_ar_estimation");
