// Ablation: ROC sweep of the detection threshold on the illustrative task,
// plus window-size sensitivity. This is the full trade-off curve behind
// the single operating point the paper reports (0.782 / 0.06).
#include <cstdio>

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

namespace {

void sweep(std::size_t window, std::size_t step, int runs) {
  sim::IllustrativeConfig cfg;
  std::printf("# window %zu ratings, step %zu (%d runs)\n", window, step, runs);
  std::printf("threshold,detection,false_alarm\n");
  for (double threshold = 0.014; threshold <= 0.0301; threshold += 0.002) {
    detect::ArDetectorConfig det_cfg;
    det_cfg.count_based = true;
    det_cfg.window_count = window;
    det_cfg.step_count = step;
    det_cfg.error_threshold = threshold;
    const detect::ArSuspicionDetector det(det_cfg);

    int detected = 0;
    int false_alarms = 0;
    Rng root(1234);
    for (int run = 0; run < runs; ++run) {
      Rng rng_a = root.split();
      Rng rng_h = root.split();
      const auto attacked = sim::generate_illustrative(cfg, rng_a);
      const auto honest = sim::generate_illustrative_honest_only(cfg, rng_h);
      bool hit = false;
      for (const auto& w : det.analyze(attacked, 0.0, cfg.simu_time).windows) {
        if (w.suspicious && w.window.end > cfg.attack_start &&
            w.window.start < cfg.attack_end) {
          hit = true;
          break;
        }
      }
      if (hit) ++detected;
      if (det.analyze(honest, 0.0, cfg.simu_time).suspicious_count() > 0) {
        ++false_alarms;
      }
    }
    std::printf("%.3f,%.3f,%.3f\n", threshold,
                static_cast<double>(detected) / runs,
                static_cast<double>(false_alarms) / runs);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Ablation: threshold ROC and window size ===\n\n");
  sweep(30, 10, 300);
  sweep(50, 10, 300);
  sweep(80, 10, 300);
  return 0;
}
