// Ablation: AR estimator choice (covariance vs autocorrelation vs Burg)
// and model order, scored on the illustrative detection task (500 runs).
// The paper uses the covariance method with an unspecified order; this
// sweep shows the detection/false-alarm trade-off is stable across
// estimators and flat in the order once p >= 2.
#include <cstdio>

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

namespace {

struct Rates {
  double detection = 0.0;
  double false_alarm = 0.0;
};

Rates evaluate(detect::ArEstimator estimator, int order, double threshold) {
  sim::IllustrativeConfig cfg;
  detect::ArDetectorConfig det_cfg;
  det_cfg.count_based = true;
  det_cfg.window_count = 50;
  det_cfg.step_count = 10;
  det_cfg.order = order;
  det_cfg.estimator = estimator;
  det_cfg.error_threshold = threshold;
  const detect::ArSuspicionDetector det(det_cfg);

  int detected = 0;
  int false_alarms = 0;
  Rng root(4242);
  constexpr int kRuns = 500;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng_a = root.split();
    Rng rng_h = root.split();
    const auto attacked = sim::generate_illustrative(cfg, rng_a);
    const auto honest = sim::generate_illustrative_honest_only(cfg, rng_h);
    bool hit = false;
    for (const auto& w : det.analyze(attacked, 0.0, cfg.simu_time).windows) {
      if (w.suspicious && w.window.end > cfg.attack_start &&
          w.window.start < cfg.attack_end) {
        hit = true;
        break;
      }
    }
    if (hit) ++detected;
    if (det.analyze(honest, 0.0, cfg.simu_time).suspicious_count() > 0) {
      ++false_alarms;
    }
  }
  return {detected / 500.0, false_alarms / 500.0};
}

}  // namespace

int main() {
  std::printf("=== Ablation: estimator and order (illustrative task, 500 runs) ===\n");
  std::printf("estimator,order,detection,false_alarm\n");
  const struct {
    detect::ArEstimator est;
    const char* name;
  } estimators[] = {{detect::ArEstimator::kCovariance, "covariance"},
                    {detect::ArEstimator::kAutocorrelation, "autocorrelation"},
                    {detect::ArEstimator::kBurg, "burg"}};
  for (const auto& [est, name] : estimators) {
    for (int order : {2, 4, 8}) {
      const Rates r = evaluate(est, order, 0.022);
      std::printf("%s,%d,%.3f,%.3f\n", name, order, r.detection, r.false_alarm);
    }
  }
  return 0;
}
