// Ablation: the Record Maintenance forgetting factor (DESIGN.md calls this
// lever out explicitly). Without forgetting (lambda = 1) a collaborative
// rater's accumulated honest evidence eventually outweighs monthly attack
// hits and trust drifts back above the detection threshold; moderate
// forgetting pins trust at the recent-behaviour rate.
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

int main() {
  std::printf("=== Ablation: forgetting factor (12-month marketplace) ===\n");
  std::printf("lambda,pc_detection_m6,pc_detection_m12,pc_trust_m12,"
              "fa_reliable_m12\n");
  for (double lambda : {1.0, 0.98, 0.95, 0.9, 0.8}) {
    core::MarketplaceExperimentConfig cfg;
    cfg.system = core::default_marketplace_system_config();
    cfg.system.forgetting = lambda;
    const auto result = core::run_marketplace_experiment(cfg);
    const auto& m6 = result.months[5];
    const auto& m12 = result.months[11];
    std::printf("%.2f,%.3f,%.3f,%.3f,%.3f\n", lambda, m6.detection_pc,
                m12.detection_pc, m12.mean_trust_pc, m12.false_alarm_reliable);
  }
  return 0;
}
