// Fig. 6 reproduction: mean trust of reliable, careless, and potential-
// collaborative (PC) raters over 12 months of the §IV marketplace
// (a1 = 6, a2 = 0.5). Paper shape: PC trust sinks quickly toward ~0.4;
// careless and reliable trust climb, careless slightly below reliable.
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

int main() {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.a1 = 6.0;
  cfg.market.a2 = 0.5;
  cfg.system = core::default_marketplace_system_config();

  const auto result = core::run_marketplace_experiment(cfg);

  std::printf("=== Fig. 6: mean rater trust per month (a1=6, a2=0.5) ===\n");
  std::printf("month,reliable,careless,pc\n");
  for (const auto& m : result.months) {
    std::printf("%d,%.4f,%.4f,%.4f\n", m.month, m.mean_trust_reliable,
                m.mean_trust_careless, m.mean_trust_pc);
  }
  return 0;
}
