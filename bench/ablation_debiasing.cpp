// Ablation: dispositional-bias compensation (extension beyond the paper).
//
// The paper's §II-B notes individual unfair ratings (personality/habit)
// and relies on them cancelling out. They cancel *in expectation* — but a
// given product is rated by a finite draw of raters, and the inflater/
// curmudgeon mix varies product to product, adding variance to every
// aggregate. RaterProfileStore estimates each rater's dispositional
// offset from their history and subtracts it before aggregation, removing
// that mix variance. (A population-wide *common-mode* skew is
// unobservable without an external anchor: profiles measure deviation
// from the — equally skewed — consensus. This bench therefore uses a
// balanced population; the skew limit is printed as a reminder.)
//
// Setup: 150 training + 30 evaluation products; 120 raters of whom 30%
// inflate by +0.15 and 30% deflate by -0.15; ~12 raters per product.
// Metric: mean |aggregate − quality| on the evaluation products.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "trust/rater_profile.hpp"

using namespace trustrate;

namespace {

struct Population {
  std::vector<double> bias;  // per rater
};

Population make_population(Rng& rng, int raters) {
  Population pop;
  pop.bias.resize(static_cast<std::size_t>(raters), 0.0);
  for (auto& b : pop.bias) {
    const double u = rng.uniform();
    if (u < 0.30) {
      b = 0.15;   // grade-inflater
    } else if (u < 0.60) {
      b = -0.15;  // curmudgeon
    }
  }
  return pop;
}

RatingSeries rate_product(Rng& rng, const Population& pop, ProductId id,
                          double quality) {
  RatingSeries s;
  double t = id * 10.0;
  for (RaterId rater = 0; rater < pop.bias.size(); ++rater) {
    if (!rng.bernoulli(0.10)) continue;  // ~12 raters per product
    const double v = quality + pop.bias[rater] + rng.gaussian(0.0, 0.08);
    s.push_back({t += 0.01, clamp_unit(v), rater, id, RatingLabel::kHonest});
  }
  return s;
}

}  // namespace

int main() {
  std::printf("=== Ablation: dispositional-bias compensation ===\n");
  std::printf("population: 30%% inflate +0.15, 30%% deflate -0.15 (balanced);\n"
              "per-product rater mix varies -> aggregate variance\n\n");
  Rng rng(1977);
  const Population pop = make_population(rng, 120);

  trust::RaterProfileStore profiles{trust::ProfileClassifierConfig{}};
  for (ProductId p = 0; p < 150; ++p) {
    profiles.observe_product(rate_product(rng, pop, p, rng.uniform(0.3, 0.7)));
  }

  double err_raw = 0.0;
  double err_debiased = 0.0;
  int evaluated = 0;
  for (ProductId p = 100; p < 130; ++p) {
    const double quality = rng.uniform(0.3, 0.7);
    const RatingSeries s = rate_product(rng, pop, p, quality);
    if (s.empty()) continue;
    ++evaluated;
    double raw = 0.0;
    double debiased = 0.0;
    for (const Rating& r : s) {
      raw += r.value;
      debiased += profiles.debias(r.rater, r.value);
    }
    raw /= static_cast<double>(s.size());
    debiased /= static_cast<double>(s.size());
    err_raw += std::fabs(raw - quality);
    err_debiased += std::fabs(debiased - quality);
  }
  std::printf("mean |aggregate - quality| over %d products:\n", evaluated);
  std::printf("  plain average:     %.4f\n", err_raw / evaluated);
  std::printf("  debiased average:  %.4f\n", err_debiased / evaluated);

  // Classification summary.
  int high = 0;
  int low = 0;
  int careless = 0;
  int normal = 0;
  for (RaterId id = 0; id < pop.bias.size(); ++id) {
    switch (profiles.classify(id)) {
      case trust::RaterBehavior::kBiasedHigh: ++high; break;
      case trust::RaterBehavior::kBiasedLow: ++low; break;
      case trust::RaterBehavior::kCareless: ++careless; break;
      case trust::RaterBehavior::kNormal: ++normal; break;
      case trust::RaterBehavior::kUnclassified: break;
    }
  }
  std::printf("\nclassified: %d biased-high (truth %d), %d biased-low (truth %d), "
              "%d careless, %d normal\n",
              high, static_cast<int>(std::count(pop.bias.begin(), pop.bias.end(), 0.15)),
              low, static_cast<int>(std::count(pop.bias.begin(), pop.bias.end(), -0.15)),
              careless, normal);
  std::printf("note: a net population skew is invisible to profile-based\n"
              "debiasing (the consensus is skewed too); correcting it needs\n"
              "an external anchor.\n");
  return 0;
}
