// §III-A.2 headline numbers: over 500 Monte-Carlo runs of the illustrative
// scenario, the paper reports
//     Detection Ratio = 0.782, False Alarm Ratio = 0.06.
//
// A run counts as *detected* when at least one suspicious window overlaps
// the attack interval of the attacked series; it counts as a *false alarm*
// when the matching honest-only series produces any suspicious window.
// The operating threshold differs from the paper's 0.02 because our
// normalized-error calibration differs from Matlab covm's (see
// EXPERIMENTS.md); a sweep around the operating point is printed so the
// trade-off curve is visible.
#include <cstdio>

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "sim/illustrative.hpp"
#include "stats/intervals.hpp"

using namespace trustrate;

namespace {

struct Rates {
  int detected = 0;
  int false_alarms = 0;
  int runs = 0;
};

Rates run_experiment(double threshold, int runs, std::uint64_t seed) {
  sim::IllustrativeConfig cfg;  // paper defaults
  detect::ArDetectorConfig det;
  det.count_based = true;
  det.window_count = 50;
  det.step_count = 10;
  det.order = 4;
  det.error_threshold = threshold;
  const detect::ArSuspicionDetector detector(det);

  int detected = 0;
  int false_alarms = 0;
  Rng root(seed);
  for (int run = 0; run < runs; ++run) {
    Rng rng_attack = root.split();
    Rng rng_honest = root.split();
    const RatingSeries attacked = sim::generate_illustrative(cfg, rng_attack);
    const RatingSeries honest =
        sim::generate_illustrative_honest_only(cfg, rng_honest);

    const auto res_attack = detector.analyze(attacked, 0.0, cfg.simu_time);
    bool hit = false;
    for (const auto& w : res_attack.windows) {
      if (w.suspicious && w.window.end > cfg.attack_start &&
          w.window.start < cfg.attack_end) {
        hit = true;
        break;
      }
    }
    if (hit) ++detected;

    const auto res_honest = detector.analyze(honest, 0.0, cfg.simu_time);
    if (res_honest.suspicious_count() > 0) ++false_alarms;
  }
  return {detected, false_alarms, runs};
}

}  // namespace

int main() {
  constexpr int kRuns = 500;
  std::printf("=== Tab. 1 (text, SIII-A.2): illustrative detection over %d runs ===\n",
              kRuns);
  std::printf("paper: detection 0.782, false alarm 0.06 (threshold 0.02, Matlab covm)\n\n");
  std::printf("threshold,detection_ratio(95%% CI),false_alarm_ratio(95%% CI)\n");
  for (double threshold : {0.018, 0.020, 0.022, 0.024, 0.026}) {
    const Rates r = run_experiment(threshold, kRuns, 20070415);
    const auto det = stats::wilson_interval(static_cast<std::size_t>(r.detected),
                                            static_cast<std::size_t>(r.runs));
    const auto fa = stats::wilson_interval(
        static_cast<std::size_t>(r.false_alarms), static_cast<std::size_t>(r.runs));
    std::printf("%.4f,%.3f [%.3f-%.3f],%.3f [%.3f-%.3f]%s\n", threshold,
                static_cast<double>(r.detected) / r.runs, det.lo, det.hi,
                static_cast<double>(r.false_alarms) / r.runs, fa.lo, fa.hi,
                threshold == 0.022 ? "  <-- operating point" : "");
  }
  return 0;
}
