// Micro-benchmark: parallel epoch engine scaling (DESIGN.md §8).
//
// One 64-product epoch, ~60 days of dense ratings per product with a daily
// AR window step so the per-product stage dominates. The system (and with
// it the worker pool) is constructed once outside the timing loop — the
// steady-state streaming case, where the pool is reused every epoch close.
// BM_ParallelEpoch/1 is the serial baseline (no pool, classic loop);
// speedup at Arg(N) is baseline_time / argN_time. Expect ~N× up to the
// machine's core count and flat lines beyond it (or everywhere, on a
// single-core host).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstddef>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/system.hpp"

using namespace trustrate;

namespace {

std::vector<core::ProductObservation> dense_epoch(std::size_t products) {
  Rng rng(11);
  std::vector<core::ProductObservation> obs(products);
  for (std::size_t p = 0; p < products; ++p) {
    obs[p].product = static_cast<ProductId>(p);
    obs[p].t_start = 0.0;
    obs[p].t_end = 60.0;
    for (double t = rng.exponential(8.0); t < 60.0;
         t += rng.exponential(8.0)) {
      obs[p].ratings.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.5, 0.2)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 2000)),
           obs[p].product, RatingLabel::kHonest});
    }
    sort_by_time(obs[p].ratings);
  }
  return obs;
}

void BM_ParallelEpoch(benchmark::State& state) {
  const auto observations = dense_epoch(64);
  core::SystemConfig cfg;
  cfg.ar.window_days = 10.0;
  cfg.ar.step_days = 1.0;  // heavy window sweep per product
  cfg.epoch_workers = static_cast<std::size_t>(state.range(0));
  core::TrustEnhancedRatingSystem system(cfg);
  std::size_t ratings = 0;
  for (const auto& o : observations) ratings += o.ratings.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.process_epoch(observations));
  }
  state.SetItemsProcessed(state.iterations() * ratings);
  state.counters["workers"] = static_cast<double>(cfg.epoch_workers);
}
BENCHMARK(BM_ParallelEpoch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

TRUSTRATE_BENCH_MAIN("micro_parallel_epoch");
