// Micro-benchmarks: end-to-end system throughput — one epoch of the
// trust-enhanced pipeline, and the marketplace simulator itself.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "common/rng.hpp"
#include "core/marketplace_experiment.hpp"
#include "core/system.hpp"
#include "sim/marketplace.hpp"

using namespace trustrate;

namespace {

void BM_ProcessEpoch(benchmark::State& state) {
  sim::MarketplaceConfig mc;
  mc.months = 1;
  Rng rng(4);
  const auto market = simulate_marketplace(mc, rng);
  std::vector<core::ProductObservation> obs;
  std::size_t ratings = 0;
  for (const auto* p : market.products_in_month(0)) {
    obs.push_back({p->id, p->t_start, p->t_end, p->ratings});
    ratings += p->ratings.size();
  }
  for (auto _ : state) {
    core::TrustEnhancedRatingSystem system(
        core::default_marketplace_system_config());
    benchmark::DoNotOptimize(system.process_epoch(obs));
  }
  state.SetItemsProcessed(state.iterations() * ratings);
}
BENCHMARK(BM_ProcessEpoch);

void BM_SimulateMarketplace(benchmark::State& state) {
  sim::MarketplaceConfig mc;
  mc.months = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(5);
    benchmark::DoNotOptimize(simulate_marketplace(mc, rng));
  }
}
BENCHMARK(BM_SimulateMarketplace)->Arg(1)->Arg(12);

void BM_FullExperiment(benchmark::State& state) {
  for (auto _ : state) {
    core::MarketplaceExperimentConfig cfg;
    cfg.system = core::default_marketplace_system_config();
    benchmark::DoNotOptimize(core::run_marketplace_experiment(cfg));
  }
}
BENCHMARK(BM_FullExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

TRUSTRATE_BENCH_MAIN("micro_pipeline");
