// Micro-benchmarks: what durability costs. The in-memory streaming
// front-end is the baseline; the durable front-end (WAL append per rating,
// fsync per the policy, atomic checkpoints) is measured against it at each
// FsyncPolicy so the per-rating WAL overhead is directly readable from the
// items/s column:
//
//   none    append only — the OS flushes when it pleases
//   epoch   fsync at epoch closes and flushes (the default)
//   always  fsync after every record (group-commit territory)
//
// Plus the two recovery-path costs an operator plans around: writing an
// atomic checkpoint, and cold recovery (checkpoint restore + WAL replay).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <filesystem>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/durable/durable_stream.hpp"
#include "core/streaming.hpp"

using namespace trustrate;

namespace {

namespace fs = std::filesystem;

core::SystemConfig bench_config() {
  core::SystemConfig config;
  config.filter.q = 0.02;
  config.ar.window_days = 8.0;
  config.ar.step_days = 2.0;
  config.b = 10.0;
  return config;
}

/// ~90 days of a single product's stream: enough to close two epochs and
/// rotate past the first WAL segment boundary under small segment_bytes.
RatingSeries bench_stream(std::size_t ratings) {
  Rng rng(29);
  RatingSeries out;
  out.reserve(ratings);
  const double span_days = 90.0;
  for (std::size_t i = 0; i < ratings; ++i) {
    out.push_back({span_days * static_cast<double>(i) /
                       static_cast<double>(ratings),
                   quantize_unit(clamp_unit(rng.gaussian(0.55, 0.25)), 10,
                                 false),
                   static_cast<RaterId>(rng.uniform_int(0, 300)), 1,
                   RatingLabel::kHonest});
  }
  return out;
}

fs::path bench_dir(const char* name) {
  return fs::temp_directory_path() /
         (std::string("trustrate-micro-durability-") + name);
}

void BM_SubmitInMemory(benchmark::State& state) {
  const auto arrivals = bench_stream(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::StreamingRatingSystem stream(bench_config(), /*epoch_days=*/30.0,
                                       /*retention_epochs=*/2);
    for (const auto& r : arrivals) {
      benchmark::DoNotOptimize(stream.submit(r));
    }
  }
  state.SetItemsProcessed(state.iterations() * arrivals.size());
}
BENCHMARK(BM_SubmitInMemory)->Arg(512);

void BM_SubmitDurable(benchmark::State& state) {
  const auto arrivals = bench_stream(static_cast<std::size_t>(state.range(0)));
  const auto policy = static_cast<core::durable::FsyncPolicy>(state.range(1));
  core::durable::DurableOptions options;
  options.fsync = policy;
  const fs::path dir = bench_dir(core::durable::to_string(policy));
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);  // each iteration starts from an empty directory
    state.ResumeTiming();
    core::durable::DurableStream durable(dir, bench_config(),
                                         /*epoch_days=*/30.0,
                                         /*retention_epochs=*/2, {}, options);
    for (const auto& r : arrivals) {
      benchmark::DoNotOptimize(durable.submit(r));
    }
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * arrivals.size());
  state.SetLabel(std::string("fsync=") + core::durable::to_string(policy));
}
BENCHMARK(BM_SubmitDurable)
    ->Args({512, static_cast<int>(core::durable::FsyncPolicy::kNone)})
    ->Args({512, static_cast<int>(core::durable::FsyncPolicy::kEpoch)})
    ->Args({512, static_cast<int>(core::durable::FsyncPolicy::kAlways)});

/// The fault layer's hot-path cost when nothing is failing: a FaultInjector
/// with an exhausted (empty) plan attached, so every durable write/fsync
/// runs the injector gate and the retry-loop bookkeeping but no fault ever
/// fires. Compare against BM_SubmitDurable at the same policy: the delta is
/// what shipping the fault hooks costs a healthy deployment.
void BM_SubmitDurableFaultLayerQuiescent(benchmark::State& state) {
  const auto arrivals = bench_stream(static_cast<std::size_t>(state.range(0)));
  const auto policy = static_cast<core::durable::FsyncPolicy>(state.range(1));
  core::durable::FaultInjector quiescent;  // empty plan: never injects
  core::durable::DurableOptions options;
  options.fsync = policy;
  options.faults = &quiescent;
  const fs::path dir =
      bench_dir((std::string("quiescent-") + core::durable::to_string(policy))
                    .c_str());
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    state.ResumeTiming();
    core::durable::DurableStream durable(dir, bench_config(),
                                         /*epoch_days=*/30.0,
                                         /*retention_epochs=*/2, {}, options);
    for (const auto& r : arrivals) {
      benchmark::DoNotOptimize(durable.submit(r));
    }
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * arrivals.size());
  state.SetLabel(std::string("fsync=") + core::durable::to_string(policy) +
                 " faults=quiescent");
}
BENCHMARK(BM_SubmitDurableFaultLayerQuiescent)
    ->Args({512, static_cast<int>(core::durable::FsyncPolicy::kNone)})
    ->Args({512, static_cast<int>(core::durable::FsyncPolicy::kEpoch)})
    ->Args({512, static_cast<int>(core::durable::FsyncPolicy::kAlways)});

void BM_Checkpoint(benchmark::State& state) {
  const auto arrivals = bench_stream(static_cast<std::size_t>(state.range(0)));
  const fs::path dir = bench_dir("checkpoint");
  fs::remove_all(dir);
  core::durable::DurableStream durable(dir, bench_config(),
                                       /*epoch_days=*/30.0,
                                       /*retention_epochs=*/2);
  for (const auto& r : arrivals) durable.submit(r);
  // next_lsn is stable between checkpoints, so each iteration atomically
  // rewrites the same file: pure checkpoint write cost, no growth.
  for (auto _ : state) {
    benchmark::DoNotOptimize(durable.checkpoint());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_Checkpoint)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_ColdRecovery(benchmark::State& state) {
  const auto arrivals = bench_stream(static_cast<std::size_t>(state.range(0)));
  const fs::path dir = bench_dir("recovery");
  fs::remove_all(dir);
  {
    // Half the stream behind a checkpoint, half live in the WAL: recovery
    // restores the checkpoint and replays the second half.
    core::durable::DurableStream durable(dir, bench_config(),
                                         /*epoch_days=*/30.0,
                                         /*retention_epochs=*/2);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (i == arrivals.size() / 2) durable.checkpoint();
      durable.submit(arrivals[i]);
    }
  }
  for (auto _ : state) {
    core::durable::DurableStream durable(dir, bench_config(),
                                         /*epoch_days=*/30.0,
                                         /*retention_epochs=*/2);
    benchmark::DoNotOptimize(durable.recovery().replayed_records);
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * arrivals.size());
}
BENCHMARK(BM_ColdRecovery)->Arg(512)->Unit(benchmark::kMicrosecond);

}  // namespace

TRUSTRATE_BENCH_MAIN("micro_durability");
