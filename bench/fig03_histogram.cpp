// Fig. 3 reproduction: histograms of the illustrative scenario's ratings
// with and without collaborative raters. The paper's point: the two
// histograms are nearly indistinguishable — the value distribution alone
// cannot reveal a moderate-bias collaborative attack; the temporal view
// (Fig. 4) can.
#include <cstdio>

#include "common/rng.hpp"
#include "sim/illustrative.hpp"
#include "stats/histogram.hpp"

using namespace trustrate;

int main() {
  sim::IllustrativeConfig cfg;
  Rng rng_honest(2007);
  Rng rng_attack(2007);
  const auto honest = sim::generate_illustrative_honest_only(cfg, rng_honest);
  const auto attacked = sim::generate_illustrative(cfg, rng_attack);

  stats::Histogram h_honest(0.0, 1.0, 11);
  stats::Histogram h_attack(0.0, 1.0, 11);
  for (const Rating& r : honest) h_honest.add(r.value);
  for (const Rating& r : attacked) h_attack.add(r.value);

  std::printf("=== Fig. 3: rating histograms (11 levels) ===\n");
  std::printf("rating_level,count_without_CR,count_with_CR\n");
  for (int i = 0; i < h_honest.bins(); ++i) {
    std::printf("%.2f,%zu,%zu\n", h_honest.bin_center(i), h_honest.count(i),
                h_attack.count(i));
  }
  std::printf("\n# entropies: without CR %.3f nats, with CR %.3f nats\n",
              h_honest.entropy(), h_attack.entropy());
  return 0;
}
