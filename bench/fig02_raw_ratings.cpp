// Fig. 2 reproduction: one realization of the §III-A.2 illustrative
// scenario's raw ratings — honest ratings plus type-1 (shifted honest) and
// type-2 (recruited) collaborative ratings during days 30-44. Printed as
// CSV with the ground-truth kind so the scatter can be re-plotted.
#include <cstdio>

#include "common/rng.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

namespace {

const char* label_name(RatingLabel label) {
  switch (label) {
    case RatingLabel::kHonest: return "honest";
    case RatingLabel::kCareless: return "careless";
    case RatingLabel::kCollaborative1: return "type1";
    case RatingLabel::kCollaborative2: return "type2";
  }
  return "?";
}

}  // namespace

int main() {
  sim::IllustrativeConfig cfg;  // paper defaults: 60 days, rate 3/day, ...
  Rng rng(2007);
  const RatingSeries series = sim::generate_illustrative(cfg, rng);

  std::printf("=== Fig. 2: raw ratings with collaborative raters ===\n");
  std::printf("day,rating,kind\n");
  std::size_t honest = 0;
  std::size_t type1 = 0;
  std::size_t type2 = 0;
  for (const Rating& r : series) {
    std::printf("%.2f,%.2f,%s\n", r.time, r.value, label_name(r.label));
    switch (r.label) {
      case RatingLabel::kCollaborative1: ++type1; break;
      case RatingLabel::kCollaborative2: ++type2; break;
      default: ++honest; break;
    }
  }
  std::printf("\n# totals: honest %zu, type1 %zu, type2 %zu of %zu\n", honest,
              type1, type2, series.size());
  return 0;
}
