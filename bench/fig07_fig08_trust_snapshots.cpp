// Figs. 7 & 8 reproduction: per-rater trust at the end of month 6 and
// month 12 (a1 = 6, a2 = 0.5), plus the rater-level detection summary the
// paper annotates on the figures:
//   month 6 (paper):  false alarm 1% reliable / 3% careless, 72% PC detected
//   month 12 (paper): false alarm 0, 87% PC detected
// The full per-rater scatter is printed in CSV (rater_id, kind, trust).
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

namespace {

const char* kind_name(sim::RaterKind kind) {
  switch (kind) {
    case sim::RaterKind::kReliable: return "reliable";
    case sim::RaterKind::kCareless: return "careless";
    case sim::RaterKind::kPotentialCollaborative: return "pc";
  }
  return "?";
}

void print_snapshot(const core::MarketplaceExperimentResult& result, int month) {
  const auto& m = result.months[static_cast<std::size_t>(month - 1)];
  std::printf("month %d: false alarm reliable %.1f%%, careless %.1f%%, "
              "PC detection %.1f%%\n",
              month, 100.0 * m.false_alarm_reliable,
              100.0 * m.false_alarm_careless, 100.0 * m.detection_pc);
}

}  // namespace

int main() {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.a1 = 6.0;
  cfg.market.a2 = 0.5;
  cfg.system = core::default_marketplace_system_config();
  const auto result = core::run_marketplace_experiment(cfg);

  std::printf("=== Figs. 7-8: rater trust snapshots (a1=6, a2=0.5) ===\n");
  std::printf("paper month 6:  FA 1%% reliable / 3%% careless, 72%% PC detected\n");
  std::printf("paper month 12: FA 0%%, 87%% PC detected\n\n");
  print_snapshot(result, 6);
  print_snapshot(result, 12);

  std::printf("\n# per-rater trust at month 12\n");
  std::printf("rater_id,kind,trust\n");
  for (std::size_t id = 0; id < result.final_trust.size(); ++id) {
    std::printf("%zu,%s,%.4f\n", id, kind_name(result.rater_kind[id]),
                result.final_trust[id]);
  }
  return 0;
}
