// §III-B.2 table reproduction: four aggregation schemes under a 50%
// collaborative-rater population, averaged over 500 runs.
//
// Setup (paper): 10 honest raters (trust ~ N(0.95, 0.05), ratings
// ~ N(0.8, 0.05)) and 10 collaborative raters (trust ~ N(0.6, 0.1),
// ratings ~ N(0.4, 0.02)) aiming to *reduce* the aggregate. No filtering.
// Desired aggregate: 0.8. Paper result:
//   simple 0.6365 | beta 0.6138 | modified weighted 0.7445 | trust model 0.5985
// Expected shape: Method 3 (modified weighted average) far closest to 0.8;
// the other three dragged toward the attackers.
//
// The paper's dispersion parameters are interpreted as standard deviations
// (DESIGN.md §5).
#include <cstdio>

#include "agg/aggregator.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"

using namespace trustrate;

int main() {
  constexpr int kRuns = 500;
  constexpr int kHonest = 10;
  constexpr int kCollaborative = 10;

  const agg::SimpleAverage simple;
  const agg::BetaAggregation beta;
  const agg::ModifiedWeightedAverage weighted;
  const agg::OpinionAggregation opinion;

  double sums[4] = {0.0, 0.0, 0.0, 0.0};
  Rng root(19950308);
  for (int run = 0; run < kRuns; ++run) {
    Rng rng = root.split();
    std::vector<agg::TrustedRating> ratings;
    for (int i = 0; i < kHonest; ++i) {
      ratings.push_back({clamp_unit(rng.gaussian(0.8, 0.05)),
                         clamp_unit(rng.gaussian(0.95, 0.05))});
    }
    for (int i = 0; i < kCollaborative; ++i) {
      ratings.push_back({clamp_unit(rng.gaussian(0.4, 0.02)),
                         clamp_unit(rng.gaussian(0.6, 0.1))});
    }
    sums[0] += simple.aggregate(ratings);
    sums[1] += beta.aggregate(ratings);
    sums[2] += weighted.aggregate(ratings);
    sums[3] += opinion.aggregate(ratings);
  }

  std::printf("=== Tab. 2 (SIII-B.2): rating aggregation under 50%% attackers ===\n");
  std::printf("desired aggregate: 0.8 (mean honest rating)\n");
  std::printf("paper:  simple 0.6365, beta 0.6138, weighted 0.7445, trust-model 0.5985\n");
  std::printf("ours:   simple %.4f, beta %.4f, weighted %.4f, trust-model %.4f\n",
              sums[0] / kRuns, sums[1] / kRuns, sums[2] / kRuns, sums[3] / kRuns);
  return 0;
}
