// Fig. 5 reproduction: AR model error on a movie-rating trace, original
// vs with injected collaborative ratings (paper: Netflix "Dinosaur Planet"
// with attack days 212-272, bias1 0.2 @ 50%, bias2 0.25 @ 100%,
// badVar = 0.25 * goodVar).
//
// The Netflix Prize data is proprietary and withdrawn; a synthetic trace
// with the same statistical shape stands in (DESIGN.md §5). A real trace
// in CSV form (time,rater,value) can be analyzed with
// examples/netflix_trace_analysis instead.
#include <cstdio>

#include "common/rng.hpp"
#include "data/inject.hpp"
#include "data/netflix_like.hpp"
#include "detect/ar_detector.hpp"

using namespace trustrate;

namespace {

void print_errors(const char* label, const RatingSeries& series, double days) {
  detect::ArDetectorConfig cfg;
  cfg.count_based = true;   // windows of equal rating counts track the
  cfg.window_count = 100;   // strongly varying arrival rate
  cfg.step_count = 25;
  cfg.order = 4;
  cfg.error_threshold = 0.02;
  const detect::ArSuspicionDetector detector(cfg);
  const auto result = detector.analyze(series, 0.0, days);
  std::printf("# %s\nday,model_error\n", label);
  for (const auto& w : result.windows) {
    if (!w.evaluated) continue;
    std::printf("%.1f,%.5f\n", w.window.center(), w.model_error);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: model error on movie-rating trace ===\n\n");
  data::NetflixLikeConfig nf;  // ~700 days, 1-5 stars
  Rng rng(20031218);
  const data::RatingTrace original = data::generate_netflix_like(nf, rng);

  data::InjectionConfig inj;   // paper parameters for Dinosaur Planet
  Rng rng_inject(42);
  const data::RatingTrace attacked =
      data::inject_collaborative(original, inj, rng_inject);

  std::printf("# trace: %zu ratings over %.0f days; attack days %.0f-%.0f "
              "adds %zu ratings\n\n",
              original.ratings.size(), nf.days, inj.attack_start, inj.attack_end,
              attacked.ratings.size() - original.ratings.size());
  print_errors("original trace", original.ratings, nf.days);
  print_errors("with injected collaborative ratings", attacked.ratings, nf.days);
  return 0;
}
