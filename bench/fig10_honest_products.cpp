// Fig. 10 reproduction: aggregated ratings of the 48 honest products
// (a1 = 8, a2 = 0.5, bias_shift2 = 0.15). All three schemes — simple
// average, beta-function aggregation, and the proposed modified weighted
// average — should track the true product quality closely, since honest
// products receive no collaborative ratings.
#include <cmath>
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

int main() {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.a1 = 8.0;
  cfg.market.a2 = 0.5;
  cfg.market.bias_shift2 = 0.15;
  cfg.system = core::default_marketplace_system_config();
  const auto result = core::run_marketplace_experiment(cfg);

  std::printf("=== Fig. 10: aggregated rating, honest products (bias 0.15) ===\n");
  std::printf("product_id,quality,simple_average,beta_function,modified_weighted\n");
  double dev_simple = 0.0;
  double dev_beta = 0.0;
  double dev_weighted = 0.0;
  int count = 0;
  for (const auto& a : result.aggregates) {
    if (a.dishonest) continue;
    ++count;
    std::printf("%u,%.3f,%.4f,%.4f,%.4f\n", a.id, a.quality, a.simple_average,
                a.beta_function, a.weighted);
    dev_simple += std::fabs(a.simple_average - a.quality);
    dev_beta += std::fabs(a.beta_function - a.quality);
    dev_weighted += std::fabs(a.weighted - a.quality);
  }
  std::printf("\nmean |aggregate - quality| over %d honest products:\n", count);
  std::printf("simple %.4f, beta %.4f, weighted %.4f\n", dev_simple / count,
              dev_beta / count, dev_weighted / count);
  return 0;
}
