// Fig. 9 reproduction: per-month unfair-*rating* detection ratio and fair-
// rating false-alarm ratio of the proposed scheme (a1 = 6, a2 = 0.5).
// Paper shape: detection climbs toward ~0.87 while false alarm decays to
// almost zero. The paper also notes that none of the baseline schemes
// detect strategy-2 collaborative ratings at all; the companion ablation
// bench (ablation_baseline_detectors) quantifies that claim.
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

int main() {
  core::MarketplaceExperimentConfig cfg;
  cfg.market.a1 = 6.0;
  cfg.market.a2 = 0.5;
  cfg.system = core::default_marketplace_system_config();
  const auto result = core::run_marketplace_experiment(cfg);

  std::printf("=== Fig. 9: unfair-rating detection per month (a1=6, a2=0.5) ===\n");
  std::printf("month,detection_ratio,false_alarm_ratio\n");
  for (const auto& m : result.months) {
    std::printf("%d,%.3f,%.3f\n", m.month, m.rating_metrics.detection_ratio(),
                m.rating_metrics.false_alarm_ratio());
  }
  return 0;
}
