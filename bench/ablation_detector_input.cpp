// Ablation: what the AR detector should analyze — the raw rating stream or
// the beta-filter survivors (SystemConfig::detector_on_filtered).
//
// Figure 1 of the paper feeds Feature Extraction II the post-filter
// "normal ratings". Filtering trims the majority's tails, which compresses
// and *homogenizes* the honest residual variance across products (the
// careless-rater tails disappear); on the raw stream the honest baseline
// varies enough across products that no fixed threshold separates cleanly.
// Each input needs its own threshold, so the comparison sweeps both.
#include <cstdio>
#include <vector>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

int main() {
  std::printf("=== Ablation: detector input (raw vs filtered) ===\n");
  std::printf("input,threshold,pc_detection_m12,fa_reliable_m12,fa_careless_m12\n");

  for (const bool filtered : {true, false}) {
    const std::vector<double> thresholds =
        filtered ? std::vector<double>{0.020, 0.024, 0.028}
                 : std::vector<double>{0.030, 0.036, 0.042};
    for (const double threshold : thresholds) {
      core::MarketplaceExperimentConfig cfg;
      cfg.system = core::default_marketplace_system_config();
      cfg.system.detector_on_filtered = filtered;
      cfg.system.ar.error_threshold = threshold;
      const auto result = core::run_marketplace_experiment(cfg);
      const auto& m12 = result.months.back();
      std::printf("%s,%.3f,%.3f,%.3f,%.3f\n", filtered ? "filtered" : "raw",
                  threshold, m12.detection_pc, m12.false_alarm_reliable,
                  m12.false_alarm_careless);
    }
  }
  return 0;
}
