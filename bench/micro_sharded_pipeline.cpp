// Micro-benchmark: sharded pipeline throughput (DESIGN.md §14).
//
// BM_ShardedStream pushes one pre-generated, time-sorted rating stream
// through ShardedRatingSystem at several shard counts, inline (threaded=0,
// the partitioned-state baseline — bitwise the reference, zero threads)
// and threaded (threaded=1, one worker per shard plus a merge thread).
// Each iteration builds a fresh system: ingest is stateful (watermark,
// duplicate horizon), so re-streaming into a warm system would measure a
// different — and degenerate — code path. Throughput is items_per_second
// over submitted ratings.
//
// Scaling expectation: threaded 4-shard throughput > 2x threaded 1-shard
// on a >= 4-core host (the CI perf-smoke gate checks exactly that, and
// relaxes to a no-regression bound on smaller runners — on a single
// hardware thread the extra shards only add queue hops and yields).
//
// BM_SpscTransfer isolates the transport: one producer and one consumer
// thread moving 64-byte payloads through the bounded ring, the hot edge
// every routed rating crosses twice in threaded mode.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <array>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/shard/sharded_system.hpp"
#include "core/shard/spsc_queue.hpp"

using namespace trustrate;

namespace {

core::SystemConfig bench_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

/// Time-sorted stream: 32 products round-robin over 120 days (4 epochs at
/// 30 days), ~24k ratings, 500 raters.
const RatingSeries& bench_stream() {
  static const RatingSeries stream = [] {
    Rng rng(17);
    RatingSeries s;
    double t = 0.0;
    for (int i = 0; i < 24000; ++i) {
      t += 0.005;
      s.push_back({t, quantize_unit(clamp_unit(rng.gaussian(0.5, 0.2)), 10,
                                    false),
                   static_cast<RaterId>(1 + rng.uniform_int(0, 500)),
                   static_cast<ProductId>(1 + i % 32), RatingLabel::kHonest});
    }
    return s;
  }();
  return stream;
}

void BM_ShardedStream(benchmark::State& state) {
  const RatingSeries& stream = bench_stream();
  core::shard::ShardOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  options.threaded = state.range(1) != 0;
  for (auto _ : state) {
    core::shard::ShardedRatingSystem system(bench_config(), options, 30.0, 2,
                                            {});
    for (const Rating& r : stream) system.submit(r);
    benchmark::DoNotOptimize(system.flush());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
  state.counters["shards"] = static_cast<double>(options.shards);
  state.counters["threaded"] = options.threaded ? 1.0 : 0.0;
}
BENCHMARK(BM_ShardedStream)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({7, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SpscTransfer(benchmark::State& state) {
  using Payload = std::array<std::uint64_t, 8>;  // one cache line, as ShardEvent-ish
  const std::size_t capacity = static_cast<std::size_t>(state.range(0));
  constexpr std::int64_t kBatch = 100000;
  for (auto _ : state) {
    core::shard::SpscQueue<Payload> q(capacity);
    std::thread consumer([&q] {
      Payload p;
      std::uint64_t sink = 0;
      for (std::int64_t i = 0; i < kBatch; ++i) {
        q.pop(p);
        sink += p[0];
      }
      benchmark::DoNotOptimize(sink);
    });
    for (std::int64_t i = 0; i < kBatch; ++i) {
      Payload p{};
      p[0] = static_cast<std::uint64_t>(i);
      q.push(std::move(p));
    }
    consumer.join();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["capacity"] = static_cast<double>(capacity);
}
BENCHMARK(BM_SpscTransfer)->Arg(16)->Arg(4096)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SpscTransferBatch(benchmark::State& state) {
  // Same payload volume as BM_SpscTransfer, moved with try_push_n/pop_n
  // spans: one index handoff per span instead of per item, which is the
  // delta the classifier and merge paths now ride (DESIGN.md §15).
  using Payload = std::array<std::uint64_t, 8>;
  const std::size_t capacity = static_cast<std::size_t>(state.range(0));
  constexpr std::int64_t kBatch = 100000;
  constexpr std::size_t kSpan = 32;
  for (auto _ : state) {
    core::shard::SpscQueue<Payload> q(capacity);
    std::thread consumer([&q] {
      std::array<Payload, kSpan> span;
      std::uint64_t sink = 0;
      std::int64_t seen = 0;
      while (seen < kBatch) {
        const std::size_t n = q.pop_n(span.data(), kSpan);
        for (std::size_t i = 0; i < n; ++i) sink += span[i][0];
        seen += static_cast<std::int64_t>(n);
      }
      benchmark::DoNotOptimize(sink);
    });
    std::array<Payload, kSpan> out;
    std::int64_t sent = 0;
    while (sent < kBatch) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::int64_t>(kSpan, kBatch - sent));
      for (std::size_t i = 0; i < want; ++i) {
        out[i] = Payload{};
        out[i][0] = static_cast<std::uint64_t>(sent + static_cast<std::int64_t>(i));
      }
      std::size_t done = 0;
      std::size_t spins = 0;
      while (done < want) {
        const std::size_t pushed = q.try_push_n(out.data() + done, want - done);
        done += pushed;
        // Same spin-then-yield discipline as the pipeline's producers
        // (enqueue/flush_staged): a hot retry loop would hammer the
        // consumer's index line with acquire loads and starve the drain.
        if (pushed == 0 && ++spins >= 64) {
          std::this_thread::yield();
          spins = 0;
        }
      }
      sent += static_cast<std::int64_t>(want);
    }
    consumer.join();
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["capacity"] = static_cast<double>(capacity);
  state.counters["span"] = static_cast<double>(kSpan);
}
BENCHMARK(BM_SpscTransferBatch)->Arg(16)->Arg(4096)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

TRUSTRATE_BENCH_MAIN("micro_sharded_pipeline");
