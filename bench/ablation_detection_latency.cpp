// Ablation: detection latency (extension beyond the paper) — how long
// after a campaign starts does the first suspicious window fire? The
// operational metric for containment: every undetected day lets more
// biased ratings into the aggregate.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

int main() {
  sim::IllustrativeConfig cfg;  // attack starts day 30
  detect::ArDetectorConfig det_cfg;
  det_cfg.count_based = true;
  det_cfg.window_count = 50;
  det_cfg.step_count = 5;  // fine-grained stepping for latency resolution
  det_cfg.error_threshold = 0.022;
  const detect::ArSuspicionDetector det(det_cfg);

  std::vector<double> latencies;
  int missed = 0;
  constexpr int kRuns = 500;
  Rng root(60607);
  for (int run = 0; run < kRuns; ++run) {
    Rng rng = root.split();
    const RatingSeries s = sim::generate_illustrative(cfg, rng);
    double first = -1.0;
    for (const auto& w : det.analyze(s, 0.0, cfg.simu_time).windows) {
      if (!w.suspicious) continue;
      if (w.window.end <= cfg.attack_start) continue;  // pre-attack FA
      first = w.window.end;  // flagged once the window is complete
      break;
    }
    if (first < 0.0) {
      ++missed;
    } else {
      latencies.push_back(std::max(first - cfg.attack_start, 0.0));
    }
  }
  std::sort(latencies.begin(), latencies.end());
  auto q = [&](double p) {
    return latencies[static_cast<std::size_t>(p * (latencies.size() - 1))];
  };
  std::printf("=== Ablation: detection latency (%d runs, attack at day %.0f) ===\n",
              kRuns, cfg.attack_start);
  std::printf("detected %zu/%d campaigns (%.1f%%)\n", latencies.size(), kRuns,
              100.0 * latencies.size() / kRuns);
  std::printf("latency days: p10 %.1f, median %.1f, p90 %.1f, max %.1f\n",
              q(0.10), q(0.50), q(0.90), latencies.back());
  std::printf("(the attack runs 14 days; a median latency under half of that\n"
              " lets Procedure 2 penalize the campaign while it is running)\n");
  return 0;
}
