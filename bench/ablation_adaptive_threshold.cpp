// Ablation: fixed vs self-calibrating detection threshold across rating
// populations with different spreads.
//
// A threshold tuned for the §IV mixture (honest window error ~0.028)
// misfires on a quieter population (σ 0.15: honest error ~0.013 — the
// fixed threshold flags *everything*) and goes blind on a noisier one
// (σ 0.35: attack windows sit above it). The adaptive tracker learns each
// population's baseline from its own non-suspicious windows and keeps the
// operating point sane without retuning.
#include <cstdio>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "detect/adaptive_threshold.hpp"
#include "detect/ar_detector.hpp"
#include "core/metrics.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

namespace {

struct Rates {
  double detection = 0.0;
  double false_alarm = 0.0;
};

// Scores per-window decisions against whether the window overlaps the
// attack, across `runs` seeded scenarios.
Rates evaluate(double good_sigma, bool adaptive, double fixed_threshold) {
  sim::IllustrativeConfig cfg;
  cfg.good_sigma = good_sigma;
  cfg.bad_sigma = good_sigma / 10.0;

  detect::ArDetectorConfig det_cfg;
  det_cfg.count_based = true;
  det_cfg.window_count = 50;
  det_cfg.step_count = 10;
  det_cfg.error_threshold = 1.0;  // classify manually below
  const detect::ArSuspicionDetector det(det_cfg);

  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;
  Rng root(90210);
  detect::AdaptiveThresholdTracker tracker{detect::AdaptiveThresholdConfig{}};
  constexpr int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng = root.split();
    const RatingSeries s = sim::generate_illustrative(cfg, rng);
    const auto res = det.analyze(s, 0.0, cfg.simu_time);
    for (const auto& w : res.windows) {
      if (!w.evaluated) continue;
      const double threshold =
          adaptive ? tracker.threshold() : fixed_threshold;
      const bool flagged = w.model_error < threshold;
      if (adaptive) tracker.observe(w.model_error);
      const bool is_attack =
          w.window.end > cfg.attack_start && w.window.start < cfg.attack_end;
      if (is_attack && flagged) ++tp;
      if (is_attack && !flagged) ++fn;
      if (!is_attack && flagged) ++fp;
      if (!is_attack && !flagged) ++tn;
    }
  }
  return {static_cast<double>(tp) / static_cast<double>(tp + fn),
          static_cast<double>(fp) / static_cast<double>(fp + tn)};
}

}  // namespace

int main() {
  std::printf("=== Ablation: fixed vs adaptive threshold across populations ===\n");
  std::printf("(per-window scoring on the illustrative scenario, 200 runs each;\n"
              " fixed threshold 0.022 was tuned for sigma 0.20)\n\n");
  std::printf("good_sigma,mode,detection,false_alarm\n");
  for (double sigma : {0.15, 0.20, 0.30}) {
    const Rates fixed = evaluate(sigma, /*adaptive=*/false, 0.022);
    const Rates adaptive = evaluate(sigma, /*adaptive=*/true, 0.0);
    std::printf("%.2f,fixed,%.3f,%.3f\n", sigma, fixed.detection,
                fixed.false_alarm);
    std::printf("%.2f,adaptive,%.3f,%.3f\n", sigma, adaptive.detection,
                adaptive.false_alarm);
  }
  return 0;
}
