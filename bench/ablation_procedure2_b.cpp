// Ablation: Procedure 2's b parameter — the weight of a unit of AR
// suspicion relative to a hard filter rejection. b trades collaborative-
// rater detection against honest-bystander false alarms, because every
// rater active in a suspicious window shares the penalty.
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

int main() {
  std::printf("=== Ablation: Procedure-2 suspicion weight b ===\n");
  std::printf("b,pc_detection_m12,fa_reliable_m6,fa_careless_m6,"
              "fa_reliable_m12,fa_careless_m12\n");
  for (double b : {2.0, 5.0, 8.0, 10.0, 14.0, 20.0}) {
    core::MarketplaceExperimentConfig cfg;
    cfg.system = core::default_marketplace_system_config();
    cfg.system.b = b;
    const auto result = core::run_marketplace_experiment(cfg);
    const auto& m6 = result.months[5];
    const auto& m12 = result.months[11];
    std::printf("%.0f,%.3f,%.3f,%.3f,%.3f,%.3f\n", b, m12.detection_pc,
                m6.false_alarm_reliable, m6.false_alarm_careless,
                m12.false_alarm_reliable, m12.false_alarm_careless);
  }
  return 0;
}
