// Machine-readable micro-benchmark output (ISSUE 5 satellite).
//
// Google-benchmark's console output is for humans; CI wants a stable JSON
// artifact per binary. TRUSTRATE_BENCH_MAIN(name) replaces the stock
// BENCHMARK_MAIN(): it runs the registered benchmarks through a collecting
// console reporter, then writes `BENCH_<name>.json` into the working
// directory (override with TRUSTRATE_BENCH_JSON_DIR) with one entry per
// non-aggregate run:
//
//   {"bench": "<name>", "schema": "trustrate-bench-2",
//    "hardware_threads": 4, "build_type": "Release",
//    "results": [{"name": "BM_Foo/50/4", "benchmark": "BM_Foo",
//                 "params": "50/4", "repetitions": 3,
//                 "iterations": 12345,
//                 "ns_per_op": {"p50": ..., "p90": ..., "p99": ...}}]}
//
// Schema history: trustrate-bench-2 added hardware_threads (the runner's
// core count — a 1-CPU CI VM and a 16-core laptop produce incomparable
// threaded-pipeline numbers) and build_type (Debug numbers are never
// comparable to Release). results[] is unchanged from trustrate-bench-1,
// so consumers keyed on results[].name / ns_per_op.p50 keep working.
//
// ns/op = real_accumulated_time / iterations, independent of the
// benchmark's display time unit. Percentiles are nearest-rank over the
// per-repetition samples; a single repetition (the default) reports the
// same value for every percentile. Wall-clock numbers are inherently
// non-deterministic — tests validate this file's *schema*, never its
// values (the counter/timing split of DESIGN.md §11).
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace trustrate::benchjson {

/// One benchmark family instance ("BM_Foo/50/4") and its repetition samples.
struct Samples {
  std::vector<double> ns_per_op;        ///< one per repetition, insert order
  benchmark::IterationCount iterations = 0;  ///< of the last repetition
};

/// Nearest-rank percentile over unsorted samples (p in [0, 100]).
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
  if (idx >= xs.size()) idx = xs.size() - 1;
  return xs[idx];
}

/// Console reporter that additionally collects every non-aggregate,
/// non-errored run, keyed by full run name, preserving first-seen order.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      auto it = index_.find(name);
      if (it == index_.end()) {
        it = index_.emplace(name, order_.size()).first;
        order_.push_back(name);
        samples_.emplace_back();
      }
      Samples& s = samples_[it->second];
      if (run.iterations > 0) {
        s.ns_per_op.push_back(run.real_accumulated_time /
                              static_cast<double>(run.iterations) * 1e9);
        s.iterations = run.iterations;
      }
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<std::string>& names() const { return order_; }
  const Samples& samples(std::size_t i) const { return samples_[i]; }

 private:
  std::map<std::string, std::size_t> index_;
  std::vector<std::string> order_;
  std::vector<Samples> samples_;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// The CMake build type baked in via TRUSTRATE_BUILD_TYPE (see
/// bench/CMakeLists.txt); falls back to the NDEBUG split when the
/// definition is absent (e.g. a non-CMake compile of this header).
inline const char* build_type() {
#ifdef TRUSTRATE_BUILD_TYPE
  return TRUSTRATE_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

/// Writes BENCH_<bench_name>.json from the collected runs. Returns the
/// path written, or an empty string when the file could not be opened.
inline std::string write_json(const std::string& bench_name,
                              const CollectingReporter& reporter) {
  const char* dir = std::getenv("TRUSTRATE_BENCH_JSON_DIR");
  std::string path = dir != nullptr && *dir != '\0'
                         ? std::string(dir) + "/BENCH_" + bench_name + ".json"
                         : "BENCH_" + bench_name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return {};
  out << "{\"bench\":\"" << json_escape(bench_name)
      << "\",\"schema\":\"trustrate-bench-2\",\"hardware_threads\":"
      << std::thread::hardware_concurrency() << ",\"build_type\":\""
      << json_escape(build_type()) << "\",\"results\":[";
  for (std::size_t i = 0; i < reporter.names().size(); ++i) {
    const std::string& name = reporter.names()[i];
    const Samples& s = reporter.samples(i);
    const std::size_t slash = name.find('/');
    const std::string base = name.substr(0, slash);
    const std::string params =
        slash == std::string::npos ? "" : name.substr(slash + 1);
    if (i != 0) out << ",";
    out << "{\"name\":\"" << json_escape(name) << "\",\"benchmark\":\""
        << json_escape(base) << "\",\"params\":\"" << json_escape(params)
        << "\",\"repetitions\":" << s.ns_per_op.size()
        << ",\"iterations\":" << s.iterations << ",\"ns_per_op\":{\"p50\":"
        << format_double(percentile(s.ns_per_op, 50.0)) << ",\"p90\":"
        << format_double(percentile(s.ns_per_op, 90.0)) << ",\"p99\":"
        << format_double(percentile(s.ns_per_op, 99.0)) << "}}";
  }
  out << "]}\n";
  return path;
}

}  // namespace trustrate::benchjson

/// Drop-in replacement for BENCHMARK_MAIN(): identical console behaviour
/// plus the BENCH_<name>.json artifact.
#define TRUSTRATE_BENCH_MAIN(bench_name)                                  \
  int main(int argc, char** argv) {                                       \
    char arg0_default[] = "benchmark";                                    \
    char* args_default = arg0_default;                                    \
    if (!argv) {                                                          \
      argc = 1;                                                           \
      argv = &args_default;                                               \
    }                                                                     \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::trustrate::benchjson::CollectingReporter reporter;                  \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                       \
    const std::string written =                                           \
        ::trustrate::benchjson::write_json(bench_name, reporter);         \
    if (!written.empty()) {                                               \
      std::fprintf(stderr, "bench json: %s\n", written.c_str());          \
    }                                                                     \
    ::benchmark::Shutdown();                                              \
    return 0;                                                             \
  }                                                                       \
  int main(int, char**)
