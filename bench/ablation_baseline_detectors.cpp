// The paper's comparison claim (§IV-B): against strategy-2 collaborative
// ratings (moderate bias, not far from the majority) the existing
// filtering techniques detect essentially nothing — "the detection ratios
// are all 0" — while the AR suspicion detector catches the attack.
//
// This bench scores four baselines and the AR detector per rating on the
// same illustrative streams (500 runs):
//   beta-quantile (Whitby [4]), entropy (Weng [5]),
//   endorsement (Chen-Singh [2]), 2-means clustering (Dellarocas [3]),
//   AR suspicion (this paper).
// Two attack strengths are shown: strategy 2 (bias 0.15) and strategy 1
// (bias 0.45 at max ratings) — the baselines *do* catch strategy 1.
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "detect/cluster_filter.hpp"
#include "detect/endorsement_filter.hpp"
#include "detect/entropy_filter.hpp"
#include "core/metrics.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

namespace {

core::DetectionMetrics score_filter(const detect::RatingFilter& filter,
                                    const RatingSeries& series) {
  const auto outcome = filter.filter(series);
  return core::score_rating_flags(series, outcome.removed_mask(series.size()));
}

core::DetectionMetrics score_ar(const RatingSeries& series, double simu_time) {
  detect::ArDetectorConfig cfg;
  cfg.count_based = true;
  cfg.window_count = 50;
  cfg.step_count = 10;
  cfg.error_threshold = 0.022;
  const detect::ArSuspicionDetector det(cfg);
  const auto res = det.analyze(series, 0.0, simu_time);
  return core::score_rating_flags(series, res.in_suspicious_window);
}

void run_strategy(const char* label, double bias2, double bias1,
                  double quality) {
  sim::IllustrativeConfig cfg;
  cfg.bias_shift2 = bias2;
  cfg.bias_shift1 = bias1;
  cfg.quality_start = quality;
  cfg.quality_end = quality + 0.05;

  const detect::BetaQuantileFilter beta({.q = 0.1});
  const detect::EntropyFilter entropy(
      {.levels = 11, .levels_include_zero = true, .threshold = 0.02});
  const detect::EndorsementFilter endorsement({.deviations = 2.0});
  const detect::ClusterFilter cluster{detect::ClusterFilterConfig{}};

  core::DetectionMetrics m_beta, m_entropy, m_endorse, m_cluster, m_ar;
  Rng root(777);
  constexpr int kRuns = 500;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng = root.split();
    const RatingSeries s = sim::generate_illustrative(cfg, rng);
    m_beta += score_filter(beta, s);
    m_entropy += score_filter(entropy, s);
    m_endorse += score_filter(endorsement, s);
    m_cluster += score_filter(cluster, s);
    m_ar += score_ar(s, cfg.simu_time);
  }

  std::printf("%s\n", label);
  std::printf("  %-22s %10s %12s\n", "detector", "detection", "false alarm");
  auto row = [](const char* name, const core::DetectionMetrics& m) {
    std::printf("  %-22s %10.3f %12.3f\n", name, m.detection_ratio(),
                m.false_alarm_ratio());
  };
  row("beta-quantile [4]", m_beta);
  row("entropy [5]", m_entropy);
  row("endorsement [2]", m_endorse);
  row("clustering [3]", m_cluster);
  row("AR suspicion (paper)", m_ar);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Ablation: baselines vs the AR detector (500 runs each) ===\n\n");
  run_strategy("strategy 2: moderate bias (shift 0.15, the hard case)",
               0.15, 0.2, 0.7);
  run_strategy("strategy 1: large bias (shift 0.45 over quality 0.4)",
               0.45, 0.45, 0.4);
  return 0;
}
