// Ablation: ingestion fault tolerance (extension beyond the paper).
//
// The hardened streaming front-end (core/ingest.hpp) claims that hostile
// delivery — out-of-order arrivals, client retries, corrupted records —
// does not degrade detection. This bench quantifies that claim: a six-month
// multi-product stream with monthly shill campaigns is run clean, then
// re-run under each transport fault class injected by data::FaultInjector,
// and detection quality (mean shill vs honest trust, shills flagged below
// the malicious threshold) is compared against the clean baseline. For the
// repairable classes (bounded reordering, duplicates) the trust values must
// match the clean run exactly; for lossy classes (drops, corruption) the
// interesting question is how gracefully detection degrades.
#include <cstdio>
#include <string>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/streaming.hpp"
#include "data/inject.hpp"

using namespace trustrate;

namespace {

core::SystemConfig pipeline_config() {
  core::SystemConfig cfg;
  cfg.filter.q = 0.02;
  cfg.ar.window_days = 8.0;
  cfg.ar.step_days = 2.0;
  cfg.ar.error_threshold = 0.024;
  cfg.b = 10.0;
  return cfg;
}

/// Six months, four products, a shill block attacking one product per month.
RatingSeries campaign_stream(std::uint64_t seed) {
  Rng rng(seed);
  RatingSeries stream;
  RaterId shill = 9000;
  for (int month = 0; month < 6; ++month) {
    const double t0 = month * 30.0;
    for (ProductId p = 1; p <= 4; ++p) {
      for (double t = t0 + rng.exponential(6.0); t < t0 + 30.0;
           t += rng.exponential(6.0)) {
        stream.push_back(
            {t, quantize_unit(clamp_unit(rng.gaussian(0.55, 0.25)), 10, false),
             static_cast<RaterId>(rng.uniform_int(0, 400)), p,
             RatingLabel::kHonest});
      }
    }
    const auto target = static_cast<ProductId>(1 + month % 4);
    for (double t = t0 + 6.0 + rng.exponential(16.0); t < t0 + 16.0;
         t += rng.exponential(16.0)) {
      stream.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.72, 0.02)), 10, false),
           shill++, target, RatingLabel::kCollaborative2});
    }
  }
  sort_by_time(stream);
  return stream;
}

struct RunResult {
  double shill_trust = 0.0;
  double honest_trust = 0.0;
  double shill_flagged = 0.0;  ///< fraction of seen shills below threshold
  core::IngestStats stats;
  std::size_t degraded = 0;
};

RunResult run(const RatingSeries& arrivals, core::IngestConfig ingest) {
  core::StreamingRatingSystem stream(pipeline_config(), 30.0, 2, ingest);
  for (const Rating& r : arrivals) stream.submit(r);
  stream.flush();

  RunResult result;
  result.stats = stream.ingest_stats();
  result.degraded = stream.degraded_epochs();
  int shills = 0;
  int honest = 0;
  int flagged = 0;
  for (const auto& [id, rec] : stream.system().trust_store().records()) {
    if (id >= 9000) {
      result.shill_trust += rec.trust();
      ++shills;
      if (rec.trust() < pipeline_config().malicious_threshold) ++flagged;
    } else {
      result.honest_trust += rec.trust();
      ++honest;
    }
  }
  if (shills > 0) {
    result.shill_trust /= shills;
    result.shill_flagged = static_cast<double>(flagged) / shills;
  }
  if (honest > 0) result.honest_trust /= honest;
  return result;
}

void report(const std::string& name, const RunResult& r,
            const RunResult& baseline) {
  std::printf(
      "%-28s %8zu %8zu %6zu %6zu %6zu | %6.3f %6.3f %5.2f | %s\n",
      name.c_str(), r.stats.submitted, r.stats.accepted, r.stats.reordered,
      r.stats.duplicates, r.stats.dropped_late + r.stats.malformed,
      r.shill_trust, r.honest_trust, r.shill_flagged,
      r.shill_trust == baseline.shill_trust &&
              r.honest_trust == baseline.honest_trust
          ? "exact"
          : "differs");
}

}  // namespace

int main() {
  const RatingSeries clean = campaign_stream(301);

  std::printf("=== Ablation: detection quality under transport faults ===\n");
  std::printf("six months, 4 products, monthly shill campaigns; lateness "
              "bound 3 days\n\n");
  std::printf("%-28s %8s %8s %6s %6s %6s | %6s %6s %5s | vs clean\n",
              "fault class", "submit", "accept", "reord", "dup", "dead",
              "shill", "honest", "det");

  const core::IngestConfig hardened{.max_lateness_days = 3.0};
  const RunResult baseline = run(clean, hardened);
  report("clean", baseline, baseline);

  {
    data::FaultInjector inj({.delay_fraction = 0.3, .max_delay_days = 3.0},
                            11);
    report("reorder (within bound)", run(inj.corrupt(clean), hardened),
           baseline);
  }
  {
    data::FaultInjector inj({.delay_fraction = 0.3, .max_delay_days = 12.0},
                            12);
    report("reorder (beyond bound)", run(inj.corrupt(clean), hardened),
           baseline);
  }
  {
    data::FaultInjector inj({.duplicate_fraction = 0.25}, 13);
    report("duplicates (25%)", run(inj.corrupt(clean), hardened), baseline);
  }
  {
    data::FaultInjector inj({.corrupt_fraction = 0.10}, 14);
    report("corruption (10%)", run(inj.corrupt(clean), hardened), baseline);
  }
  {
    data::FaultInjector inj({.delay_fraction = 0.2,
                             .max_delay_days = 3.0,
                             .duplicate_fraction = 0.1,
                             .corrupt_fraction = 0.05},
                            15);
    report("mixed (all classes)", run(inj.corrupt(clean), hardened), baseline);
  }

  std::printf(
      "\nnote: 'det' is the fraction of shill identities below the trust\n"
      "threshold. Bounded reordering and duplicates are repaired exactly\n"
      "('exact' = bit-identical mean trust); drops and corruption thin the\n"
      "evidence, so detection should degrade gracefully, not collapse.\n");
  return 0;
}
