// The paper's stated future work: "study the possible attacks to the
// proposed solutions". Four adaptive counter-strategies against the
// trust-enhanced system, all at the paper's §IV operating point:
//
//   baseline     the paper's strategy-2 campaign (bias 0.15, 10-day window)
//   noise        variance camouflage: attackers match the honest rating
//                spread (bad_sigma = good_sigma), removing the variance
//                collapse the AR detector keys on
//   spread       temporal camouflage: the campaign runs all month at
//                proportionally lower intensity (no concentrated window)
//   on-off       campaigns only every other month, letting trust recover
//   whitewash    fresh Sybil identities each campaign (no trust history)
//
// Reported per strategy: attacker detection, honest false alarm, the
// aggregation damage (mean boost of dishonest products under the proposed
// scheme and under simple averaging), i.e. did evading detection actually
// buy the attacker anything?
#include <cmath>
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

namespace {

struct Outcome {
  double attacker_detection = 0.0;  ///< flagged fraction of attacking ids, month 12
  double fa_honest = 0.0;
  double boost_weighted = 0.0;      ///< mean (aggregate - quality), dishonest
  double boost_simple = 0.0;
};

Outcome run(const sim::MarketplaceConfig& market) {
  core::MarketplaceExperimentConfig cfg;
  cfg.market = market;
  cfg.system = core::default_marketplace_system_config();
  const auto result = core::run_marketplace_experiment(cfg);

  Outcome out;
  const auto& last = result.months.back();
  out.attacker_detection = last.detection_pc;
  out.fa_honest = 0.5 * (last.false_alarm_reliable + last.false_alarm_careless);
  int n = 0;
  for (const auto& a : result.aggregates) {
    if (!a.dishonest) continue;
    ++n;
    out.boost_weighted += a.weighted - a.quality;
    out.boost_simple += a.simple_average - a.quality;
  }
  if (n > 0) {
    out.boost_weighted /= n;
    out.boost_simple /= n;
  }
  return out;
}

void report(const char* name, const Outcome& o) {
  std::printf("%-10s %12.3f %10.3f %14.4f %12.4f\n", name, o.attacker_detection,
              o.fa_honest, o.boost_weighted, o.boost_simple);
}

}  // namespace

int main() {
  std::printf("=== Ablation: adaptive attacks vs the trust-enhanced system ===\n");
  std::printf("(attacker detection at month 12; boost = mean aggregate-quality "
              "on dishonest products)\n\n");
  std::printf("%-10s %12s %10s %14s %12s\n", "strategy", "att_detect",
              "fa_honest", "boost_weighted", "boost_simple");

  sim::MarketplaceConfig base;  // paper §IV defaults
  report("baseline", run(base));

  sim::MarketplaceConfig noise = base;
  noise.bad_sigma = noise.good_sigma;  // variance camouflage
  report("noise", run(noise));

  sim::MarketplaceConfig spread = base;
  spread.attack_days = 30.0;  // all-month, low-intensity campaign
  report("spread", run(spread));

  sim::MarketplaceConfig onoff = base;
  onoff.attack_every_k_months = 2;
  report("on-off", run(onoff));

  sim::MarketplaceConfig whitewash = base;
  whitewash.whitewash = true;
  report("whitewash", run(whitewash));

  std::printf(
      "\nreading: evading the AR detector (noise/spread) costs the attacker\n"
      "mass or stealth elsewhere; whitewashing evades *detection* but fresh\n"
      "identities start at neutral trust and the modified weighted average\n"
      "gives weight max(T-0.5, 0) = 0 to them, so the aggregate stays clean.\n");
  return 0;
}
