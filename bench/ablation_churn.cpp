// Ablation: rater churn (extension beyond the paper).
//
// Real platforms lose and gain raters constantly; newcomers start at the
// neutral trust prior. Churn stresses the system two ways: honest
// newcomers carry zero weight in the hinge-weighted aggregate until they
// build trust (thinning the defended consensus), and collaborative
// newcomers have no negative history to hold them back. This bench sweeps
// the monthly churn rate and reports detection of the *currently active*
// attackers and aggregation quality.
#include <cmath>
#include <cstdio>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

int main() {
  std::printf("=== Ablation: monthly rater churn ===\n");
  std::printf("churn,pc_detection_m12,fa_reliable_m12,dev_weighted,dev_simple\n");
  for (double churn : {0.0, 0.05, 0.10, 0.20}) {
    core::MarketplaceExperimentConfig cfg;
    cfg.market.monthly_churn = churn;
    cfg.system = core::default_marketplace_system_config();
    const auto result = core::run_marketplace_experiment(cfg);
    const auto& m12 = result.months.back();
    double dev_w = 0.0;
    double dev_s = 0.0;
    int n = 0;
    for (const auto& a : result.aggregates) {
      if (!a.dishonest) continue;
      ++n;
      dev_w += std::fabs(a.weighted - a.quality);
      dev_s += std::fabs(a.simple_average - a.quality);
    }
    std::printf("%.2f,%.3f,%.3f,%.4f,%.4f\n", churn, m12.detection_pc,
                m12.false_alarm_reliable, dev_w / n, dev_s / n);
  }
  std::printf("\nnote: detection counts every PC identity ever active; churned-\n"
              "out attackers retain their last trust, so the rate mixes current\n"
              "and historical identities at higher churn.\n");
  return 0;
}
