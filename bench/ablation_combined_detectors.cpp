// Ablation: composing detectors (extension beyond the paper).
//
// Three temporal detectors see three different attack signatures:
//   AR error          predictability / variance collapse
//   rate anomaly      arrival-rate spikes
//   CUSUM             mean shift
//
// This bench scores each alone and the OR-composition per rating on three
// campaign shapes against the illustrative honest baseline (300 runs):
//   stealth   bias 0.15, tight block, spread over the attack window
//   blatant   bias 0.35, spread
//   burst     bias 0.2, whole campaign inside 2 days
#include <cstdio>

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "detect/cusum_detector.hpp"
#include "detect/rate_detector.hpp"
#include "core/metrics.hpp"
#include "sim/illustrative.hpp"

using namespace trustrate;

namespace {

struct Scores {
  core::DetectionMetrics ar;
  core::DetectionMetrics rate;
  core::DetectionMetrics cusum;
  core::DetectionMetrics combined;
};

void run_scenario(const char* label, double bias2, double attack_len,
                  double recruit2) {
  sim::IllustrativeConfig cfg;
  cfg.bias_shift2 = bias2;
  cfg.enable_type1 = false;
  cfg.attack_end = cfg.attack_start + attack_len;
  cfg.recruit_power2 = recruit2;

  detect::ArDetectorConfig ar_cfg;
  ar_cfg.count_based = true;
  ar_cfg.window_count = 50;
  ar_cfg.step_count = 10;
  ar_cfg.error_threshold = 0.022;
  const detect::ArSuspicionDetector ar_det(ar_cfg);

  detect::RateDetectorConfig rate_cfg;
  rate_cfg.window_days = 3.0;
  rate_cfg.step_days = 1.5;
  rate_cfg.p_value = 1e-5;
  const detect::RateAnomalyDetector rate_det(rate_cfg);

  const detect::CusumDetector cusum_det({.k = 0.4, .h = 10.0, .warmup = 40});

  Scores scores;
  Rng root(31337);
  constexpr int kRuns = 300;
  for (int run = 0; run < kRuns; ++run) {
    Rng rng = root.split();
    const RatingSeries s = sim::generate_illustrative(cfg, rng);
    const auto ar_mask = ar_det.analyze(s, 0.0, cfg.simu_time).in_suspicious_window;
    const auto rate_mask =
        rate_det.analyze(s, 0.0, cfg.simu_time).in_anomalous_window;
    const auto cusum_mask = cusum_det.analyze(s).in_alarm;
    std::vector<bool> any(s.size(), false);
    for (std::size_t i = 0; i < s.size(); ++i) {
      any[i] = ar_mask[i] || rate_mask[i] || cusum_mask[i];
    }
    scores.ar += core::score_rating_flags(s, ar_mask);
    scores.rate += core::score_rating_flags(s, rate_mask);
    scores.cusum += core::score_rating_flags(s, cusum_mask);
    scores.combined += core::score_rating_flags(s, any);
  }

  std::printf("%s\n", label);
  auto row = [](const char* name, const core::DetectionMetrics& m) {
    std::printf("  %-12s detection %.3f, false alarm %.3f\n", name,
                m.detection_ratio(), m.false_alarm_ratio());
  };
  row("AR", scores.ar);
  row("rate", scores.rate);
  row("CUSUM", scores.cusum);
  row("AR|rate|CUSUM", scores.combined);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Ablation: detector composition (300 runs each) ===\n\n");
  run_scenario("stealth: bias 0.15, 14-day campaign", 0.15, 14.0, 1.0);
  run_scenario("blatant: bias 0.35, 14-day campaign", 0.35, 14.0, 1.0);
  run_scenario("burst:   bias 0.20, 2-day campaign at 7x volume", 0.20, 2.0, 7.0);
  return 0;
}
