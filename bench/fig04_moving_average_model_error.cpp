// Fig. 4 reproduction: the §III-A.2 illustrative scenario.
//   Upper plot: moving average (20-rating windows, step 10) of
//     (1) honest ratings only, (2) all ratings incl. collaborative,
//     (3) ratings surviving the beta-quantile filter.
//   Lower plot: AR model error (50-rating windows) with and without
//     collaborative raters; the error drops inside the attack interval
//     (days 30-44).
#include <cstdio>

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "sim/illustrative.hpp"
#include "stats/moving.hpp"

using namespace trustrate;

namespace {

void print_moving_average(const char* label, const RatingSeries& series) {
  std::vector<double> values;
  std::vector<double> times;
  for (const Rating& r : series) {
    values.push_back(r.value);
    times.push_back(r.time);
  }
  std::printf("# moving average: %s (20-rating windows, step 10)\n", label);
  std::printf("day,mean_rating\n");
  for (const auto& p : stats::moving_average_by_count(values, times, 20, 10)) {
    std::printf("%.2f,%.4f\n", p.position, p.value);
  }
  std::printf("\n");
}

void print_model_error(const char* label, const RatingSeries& series) {
  detect::ArDetectorConfig cfg;
  cfg.count_based = true;
  cfg.window_count = 50;
  cfg.step_count = 10;
  cfg.order = 4;
  cfg.error_threshold = 0.025;
  const detect::ArSuspicionDetector detector(cfg);
  const auto result = detector.analyze(series, 0.0, 60.0);
  std::printf("# AR model error: %s (50-rating windows, step 10, order 4)\n", label);
  std::printf("day,model_error,suspicious\n");
  for (const auto& w : result.windows) {
    if (!w.evaluated) continue;
    std::printf("%.2f,%.5f,%d\n", w.window.center(), w.model_error,
                w.suspicious ? 1 : 0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Fig. 4: moving average and AR model error ===\n\n");
  sim::IllustrativeConfig cfg;  // paper defaults
  Rng rng_honest(2007);
  Rng rng_attack(2007);
  const RatingSeries honest = sim::generate_illustrative_honest_only(cfg, rng_honest);
  const RatingSeries attacked = sim::generate_illustrative(cfg, rng_attack);

  print_moving_average("honest only (without CR)", honest);
  print_moving_average("all ratings (with CR)", attacked);

  const detect::BetaQuantileFilter filter({.q = 0.1});
  const RatingSeries filtered = filter.filter(attacked).kept_series(attacked);
  print_moving_average("with CR, after beta filter", filtered);

  print_model_error("without CR", honest);
  print_model_error("with CR", attacked);
  return 0;
}
