// Extending the library: plugging a custom aggregation scheme into the
// pipeline, and using the opinion algebra for indirect trust.
//
//   build/examples/custom_trust_model
#include <cmath>
#include <cstdio>

#include "agg/aggregator.hpp"
#include "trust/opinion.hpp"
#include "trust/propagation.hpp"
#include "trust/record.hpp"

using namespace trustrate;

namespace {

// A custom Aggregator: exponential trust weighting w = exp(k*(T - 0.5)),
// a smooth alternative to the paper's hinge max(T - 0.5, 0).
class SoftmaxWeightedAverage final : public agg::Aggregator {
 public:
  explicit SoftmaxWeightedAverage(double sharpness) : sharpness_(sharpness) {}

  double aggregate(std::span<const agg::TrustedRating> ratings) const override {
    double weight_sum = 0.0;
    double acc = 0.0;
    for (const auto& r : ratings) {
      const double w = std::exp(sharpness_ * (r.trust - 0.5));
      weight_sum += w;
      acc += w * r.value;
    }
    return acc / weight_sum;
  }

  std::string name() const override { return "softmax-weighted"; }

 private:
  double sharpness_;
};

}  // namespace

int main() {
  // Honest raters say 0.8, a distrusted block says 0.4.
  std::vector<agg::TrustedRating> ratings;
  for (int i = 0; i < 10; ++i) ratings.push_back({0.8, 0.9});
  for (int i = 0; i < 10; ++i) ratings.push_back({0.4, 0.25});

  std::printf("aggregating 10 honest (0.8, trust 0.9) + 10 shills (0.4, trust 0.25):\n");
  std::printf("  %-26s %.4f\n", "simple average",
              agg::SimpleAverage{}.aggregate(ratings));
  std::printf("  %-26s %.4f\n", "paper's hinge weighting",
              agg::ModifiedWeightedAverage{}.aggregate(ratings));
  for (double k : {2.0, 8.0, 20.0}) {
    const SoftmaxWeightedAverage soft(k);
    std::printf("  softmax (sharpness %4.1f)    %.4f\n", k,
                soft.aggregate(ratings));
  }
  std::printf("-> as sharpness grows the softmax converges to the hinge.\n\n");

  // Indirect trust via the opinion algebra: the system has never observed
  // rater 99, but two established raters vouch for them.
  trust::TrustStore store;
  store.update(1, {.ratings = 30}, 1.0);                 // veteran, trusted
  store.update(2, {.ratings = 6, .filtered = 3}, 1.0);   // shaky record
  trust::RecommendationBuffer buffer;
  buffer.add({1, 99, 1.0});
  buffer.add({2, 99, 1.0});

  std::printf("indirect trust in unseen rater 99:\n");
  std::printf("  direct-only trust:   %.3f (the neutral prior)\n",
              store.trust(99));
  const trust::Opinion indirect = trust::indirect_opinion(store, buffer, 99);
  std::printf("  indirect opinion:    b=%.3f d=%.3f u=%.3f -> E=%.3f\n",
              indirect.belief, indirect.disbelief, indirect.uncertainty,
              indirect.expectation());
  std::printf("  combined trust:      %.3f\n",
              trust::combined_trust(store, buffer, 99));
  std::printf("-> endorsements from trusted raters move an unknown rater\n"
              "   above the prior without any direct observation.\n");
  return 0;
}
