// Full marketplace walkthrough: runs the paper's §IV economy (800 raters,
// 60 products, 12 months, monthly collaborative campaigns) through the
// trust-enhanced rating system and prints a month-by-month report.
//
//   build/examples/marketplace_simulation [months] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/marketplace_experiment.hpp"

using namespace trustrate;

int main(int argc, char** argv) {
  core::MarketplaceExperimentConfig cfg;
  if (argc > 1) cfg.market.months = std::atoi(argv[1]);
  if (argc > 2) cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  cfg.system = core::default_marketplace_system_config();

  std::printf("simulating %d months: %d reliable + %d careless + %d PC raters, "
              "%d products/month\n\n",
              cfg.market.months, cfg.market.reliable_raters,
              cfg.market.careless_raters, cfg.market.pc_raters,
              cfg.market.honest_products_per_month +
                  cfg.market.dishonest_products_per_month);

  const auto result = core::run_marketplace_experiment(cfg);

  std::printf("%5s  %8s %8s %8s | %8s %9s | %7s %6s\n", "month", "T(rel)",
              "T(care)", "T(pc)", "PC-det%", "FA-hon%", "det", "fa");
  for (const auto& m : result.months) {
    std::printf("%5d  %8.3f %8.3f %8.3f | %8.1f %9.2f | %7.2f %6.3f\n", m.month,
                m.mean_trust_reliable, m.mean_trust_careless, m.mean_trust_pc,
                100.0 * m.detection_pc,
                100.0 * (m.false_alarm_reliable + m.false_alarm_careless) / 2.0,
                m.rating_metrics.detection_ratio(),
                m.rating_metrics.false_alarm_ratio());
  }

  // Aggregation quality on the dishonest products.
  std::printf("\ndishonest products (aggregate vs true quality):\n");
  std::printf("%8s %8s %8s %8s %8s\n", "id", "quality", "simple", "beta",
              "weighted");
  for (const auto& a : result.aggregates) {
    if (!a.dishonest) continue;
    std::printf("%8u %8.3f %8.3f %8.3f %8.3f\n", a.id, a.quality,
                a.simple_average, a.beta_function, a.weighted);
  }
  return 0;
}
