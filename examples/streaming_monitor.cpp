// Live-stream monitoring: ingest a time-ordered rating stream one rating
// at a time through StreamingRatingSystem, with a RateAnomalyDetector
// running alongside as an early-warning channel — the deployment shape of
// the paper's system.
//
//   build/examples/streaming_monitor
#include <cstdio>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/streaming.hpp"
#include "detect/rate_detector.hpp"

using namespace trustrate;

int main() {
  // Four months of a single product's stream; months 2 and 4 carry
  // collaborative campaigns from the same shill block.
  Rng rng(17);
  RatingSeries stream_data;
  for (int month = 0; month < 4; ++month) {
    const double t0 = month * 30.0;
    for (double t = t0 + rng.exponential(8.0); t < t0 + 30.0;
         t += rng.exponential(8.0)) {
      stream_data.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.55, 0.25)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 300)), 1,
           RatingLabel::kHonest});
    }
    if (month % 2 == 1) {  // campaign months
      RaterId shill = 9000;
      for (double t = t0 + 8.0 + rng.exponential(18.0); t < t0 + 18.0;
           t += rng.exponential(18.0)) {
        stream_data.push_back(
            {t, quantize_unit(clamp_unit(rng.gaussian(0.72, 0.02)), 10, false),
             shill++, 1, RatingLabel::kCollaborative2});
      }
    }
  }
  sort_by_time(stream_data);

  core::SystemConfig config;
  config.filter.q = 0.02;
  config.ar.window_days = 8.0;
  config.ar.step_days = 2.0;
  config.ar.error_threshold = 0.024;
  config.b = 10.0;
  core::StreamingRatingSystem stream(config, /*epoch_days=*/30.0);

  std::printf("streaming %zu ratings over 120 days (campaigns in months 2 & 4)\n\n",
              stream_data.size());
  std::size_t last_epoch = 0;
  for (const Rating& r : stream_data) {
    stream.submit(r);
    if (stream.epochs_closed() != last_epoch) {
      last_epoch = stream.epochs_closed();
      const auto agg = stream.aggregate(1);
      std::printf("epoch %zu closed: %3zu raters below trust threshold, "
                  "aggregate %.3f (true quality 0.55)\n",
                  last_epoch, stream.malicious().size(),
                  agg.value_or(-1.0));
    }
  }
  stream.flush();
  const auto final_agg = stream.aggregate(1);
  std::printf("final:          %3zu raters below trust threshold, "
              "aggregate %.3f\n",
              stream.malicious().size(), final_agg.value_or(-1.0));

  // Who ended up distrusted? With a single product and ~4 ratings per
  // honest rater, campaign-window bystanders cannot rebuild trust the way
  // they do in the multi-product marketplace (fig07_fig08) — but the
  // shills sit at the very bottom and the aggregate stays on target.
  double shill_trust = 0.0;
  int shills = 0;
  double honest_trust = 0.0;
  int honest = 0;
  for (const auto& [id, rec] : stream.system().trust_store().records()) {
    if (id >= 9000) {
      shill_trust += rec.trust();
      ++shills;
    } else {
      honest_trust += rec.trust();
      ++honest;
    }
  }
  std::printf("mean trust: shills %.3f (%d), honest raters %.3f (%d)\n\n",
              shill_trust / shills, shills, honest_trust / honest, honest);

  // Early-warning channel: arrival-rate anomalies, no trust needed.
  detect::RateDetectorConfig rate_cfg;
  rate_cfg.window_days = 3.0;
  rate_cfg.step_days = 1.5;
  const detect::RateAnomalyDetector rate_det(rate_cfg);
  const auto anomalies = rate_det.analyze(stream_data, 0.0, 120.0);
  std::printf("arrival-rate anomalies (baseline %.1f ratings/day):\n",
              anomalies.baseline_rate);
  for (const auto& w : anomalies.windows) {
    if (!w.anomalous) continue;
    std::printf("  days [%.1f, %.1f): %zu ratings (expected %.1f)\n",
                w.window.start, w.window.end, w.last - w.first, w.expected);
  }
  return 0;
}
