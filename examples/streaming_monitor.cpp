// Live-stream monitoring with a hostile transport: ingest a rating stream
// that arrives out of order, duplicated, and occasionally corrupted, watch
// the quarantine counters, survive a mid-stream kill -9 via the durable
// front-end (write-ahead log + atomic on-disk checkpoints), and keep a
// RateAnomalyDetector running alongside as an early-warning channel — the
// deployment shape of the paper's system.
//
// The crash is real in everything but the signal: every accepted rating is
// logged to a WAL on disk, an operator checkpoint is written atomically,
// and the process then "dies" mid-durable-write via the deterministic
// crash injector — leaving a torn tail on disk exactly as kill -9 would.
// Recovery restores the checkpoint, replays the log, and resumes at the
// exactly-once cursor.
//
// With --inject-io-faults the disk itself also turns hostile: a seeded
// errno-level fault plan (EIO bursts, short writes, failed fsyncs, blocked
// renames) runs underneath the WAL. Transient faults are retried away;
// persistent ones push the stream down the persistence-degradation ladder
// (durable -> degraded -> recovering -> durable), which the monitor
// narrates as it happens. The fault plan survives the kill -9, so recovery
// itself runs on the failing disk — and the final numbers still match.
//
// With --inject-thread-faults the run ends with a third act: the same
// stream through the THREADED sharded engine behind the sharded durable
// front-end, with a seeded fault planted inside one shard worker (a crash,
// a stall, or a transient slowdown — testkit/threadfault.hpp). The
// supervision layer (DESIGN.md §15) contains the blast radius: the crash
// poisons its shard, the watchdog classifies the stall, and the durable
// stream heals — rebuilds the engine from checkpoint + per-shard WAL — and
// finishes with numbers identical to the unfaulted run, all narrated.
//
// With --serve[=port] the run ends with a serving act: the full stream
// replayed through the THREADED 3-shard engine with the session's metrics
// registry attached, then the process stays alive exposing /metrics
// (Prometheus), /healthz, and /status on 127.0.0.1 (default port 9464,
// =0 for an ephemeral port) until SIGINT/SIGTERM — the scrape target the
// CI smoke job curls.
//
//   build/examples/streaming_monitor [--inject-io-faults[=seed]]
//                                    [--inject-thread-faults[=seed]]
//                                    [--serve[=port]]
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/durable/durable_stream.hpp"
#include "core/durable/sharded_durable.hpp"
#include "core/shard/sharded_system.hpp"
#include "core/streaming.hpp"
#include "data/inject.hpp"
#include "detect/rate_detector.hpp"
#include "obs/http.hpp"
#include "obs/introspect.hpp"
#include "obs/observability.hpp"
#include "testkit/threadfault.hpp"

using namespace trustrate;

namespace {

core::SystemConfig monitor_config() {
  core::SystemConfig config;
  config.filter.q = 0.02;
  config.ar.window_days = 8.0;
  config.ar.step_days = 2.0;
  config.ar.error_threshold = 0.024;
  config.b = 10.0;
  return config;
}

void print_stats(const core::IngestStats& s) {
  std::printf("  ingest: %zu submitted, %zu accepted (%zu reordered), "
              "%zu duplicates, %zu late, %zu malformed\n",
              s.submitted, s.accepted, s.reordered, s.duplicates,
              s.dropped_late, s.malformed);
}

/// Prints a ladder transition the moment it happens; returns the new state.
core::durable::DurabilityState narrate_ladder(
    const core::durable::DurableStream& durable,
    core::durable::DurabilityState last) {
  const auto state = durable.durability_state();
  if (state != last) {
    std::printf("!! durability ladder: %s -> %s (backlog %zu, durable acks "
                "%llu of %llu)\n",
                core::durable::to_string(last),
                core::durable::to_string(state), durable.backlog_records(),
                static_cast<unsigned long long>(durable.durable_acknowledged()),
                static_cast<unsigned long long>(durable.acknowledged()));
  }
  return state;
}

/// SIGINT/SIGTERM flag for the --serve loop (sig_atomic_t: handler-safe).
volatile std::sig_atomic_t g_stop_serving = 0;

void handle_stop_signal(int) { g_stop_serving = 1; }

}  // namespace

int main(int argc, char** argv) {
  // --inject-io-faults[=seed]: run the WAL on a deterministically failing
  // disk (see file header). The plan is finite — the environment always
  // heals — so the run must end durable with the same numbers.
  core::durable::FaultInjector io_faults;
  bool inject_io_faults = false;
  bool inject_thread_faults = false;
  bool serve = false;
  std::uint16_t serve_port = 9464;
  std::uint64_t thread_fault_seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--serve", 7) == 0) {
      // --serve[=port]: end with the introspection serving act.
      serve = true;
      if (argv[i][7] == '=') {
        serve_port =
            static_cast<std::uint16_t>(std::strtoul(argv[i] + 8, nullptr, 10));
      }
    } else if (std::strncmp(argv[i], "--inject-thread-faults", 22) == 0) {
      // --inject-thread-faults[=seed]: end with the supervised sharded act.
      inject_thread_faults = true;
      if (argv[i][22] == '=') {
        thread_fault_seed = std::strtoull(argv[i] + 23, nullptr, 10);
      }
    } else if (std::strncmp(argv[i], "--inject-io-faults", 18) == 0) {
      inject_io_faults = true;
      std::uint64_t fault_seed = 3;
      if (argv[i][18] == '=') fault_seed = std::strtoull(argv[i] + 19, nullptr, 10);
      core::durable::FaultPlanOptions plan_options;
      plan_options.events = 5;
      plan_options.horizon_ops = 600;
      io_faults = core::durable::FaultInjector(
          core::durable::FaultPlan::generate(fault_seed, plan_options));
      std::printf("injecting I/O faults (seed %llu): %s\n\n",
                  static_cast<unsigned long long>(fault_seed),
                  io_faults.plan().summary().c_str());
    }
  }
  // Four months of a single product's stream; months 2 and 4 carry
  // collaborative campaigns from the same shill block.
  Rng rng(17);
  RatingSeries stream_data;
  for (int month = 0; month < 4; ++month) {
    const double t0 = month * 30.0;
    for (double t = t0 + rng.exponential(8.0); t < t0 + 30.0;
         t += rng.exponential(8.0)) {
      stream_data.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.55, 0.25)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 300)), 1,
           RatingLabel::kHonest});
    }
    if (month % 2 == 1) {  // campaign months
      RaterId shill = 9000;
      for (double t = t0 + 8.0 + rng.exponential(18.0); t < t0 + 18.0;
           t += rng.exponential(18.0)) {
        stream_data.push_back(
            {t, quantize_unit(clamp_unit(rng.gaussian(0.72, 0.02)), 10, false),
             shill++, 1, RatingLabel::kCollaborative2});
      }
    }
  }
  sort_by_time(stream_data);

  // The transport is hostile: 20% of arrivals delayed up to 2 days, 5%
  // duplicated by client retries, 2% corrupted in flight.
  data::FaultInjector faults({.delay_fraction = 0.2,
                              .max_delay_days = 2.0,
                              .duplicate_fraction = 0.05,
                              .corrupt_fraction = 0.02},
                             23);
  const RatingSeries arrivals = faults.corrupt(stream_data);

  // Lateness bound 2 days: the injected delays are fully repairable.
  const core::IngestConfig ingest{.max_lateness_days = 2.0};

  std::printf("streaming %zu arrivals (%zu clean ratings) over 120 days "
              "(campaigns in months 2 & 4)\n\n",
              arrivals.size(), stream_data.size());

  // Durable state — WAL segments plus atomic checkpoints — lives here.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "trustrate-streaming-monitor";
  fs::remove_all(dir);

  // --- first half, then a kill -9 mid-durable-write -----------------------
  // The injector admits a byte budget and then kills the "process" exactly
  // where a real SIGKILL would: with a torn partial write on disk.
  // Telemetry (DESIGN.md §11): a metrics registry and a detection audit
  // log ride along, strictly out-of-band. The same bundle is reused across
  // the crash, so the post-mortem numbers cover the whole session.
  obs::MetricsRegistry metrics;
  obs::MemoryAuditSink audit;
  obs::Observability telemetry;
  telemetry.metrics = &metrics;
  telemetry.audit = &audit;

  core::durable::CrashInjector injector;
  core::durable::DurableOptions durable_options;
  durable_options.crash = &injector;
  durable_options.obs = telemetry;
  if (inject_io_faults) durable_options.faults = &io_faults;

  const std::size_t checkpoint_at = arrivals.size() / 2;
  std::size_t acked = 0;
  std::size_t last_epoch = 0;
  auto ladder = core::durable::DurabilityState::kDurable;
  try {
    core::durable::DurableStream durable(dir, monitor_config(),
                                         /*epoch_days=*/30.0,
                                         /*retention_epochs=*/2, ingest,
                                         durable_options);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (i == checkpoint_at) {
        // Operators checkpoint on a timer; here, right before the crash.
        durable.checkpoint();
        std::printf("\n-- atomic checkpoint at arrival %zu "
                    "(%llu durable bytes so far); arming kill -9 --\n",
                    i, static_cast<unsigned long long>(
                           injector.total_written()));
        injector.arm(4096);  // die somewhere in the next 4 KiB of WAL
      }
      durable.submit(arrivals[i]);
      acked = i + 1;  // submit returned: this arrival is acknowledged
      ladder = narrate_ladder(durable, ladder);
      if (durable.stream().epochs_closed() != last_epoch) {
        last_epoch = durable.stream().epochs_closed();
        std::printf("epoch %zu closed: %3zu raters below trust threshold, "
                    "aggregate %.3f (true quality 0.55)\n",
                    last_epoch, durable.stream().malicious().size(),
                    durable.stream().aggregate(1).value_or(-1.0));
        print_stats(durable.stream().ingest_stats());
      }
    }
  } catch (const core::durable::CrashInjected& e) {
    std::printf("-- %s: process dead after %llu durable bytes, "
                "%zu/%zu arrivals acknowledged --\n",
                e.what(),
                static_cast<unsigned long long>(injector.total_written()),
                acked, arrivals.size());
  }

  // --- restart: recover from disk and resume where we left off ------------
  // The fault plan carries over: a dying disk does not heal just because
  // the process restarted.
  core::durable::DurableOptions recovery_options;
  recovery_options.obs = telemetry;
  if (inject_io_faults) recovery_options.faults = &io_faults;
  core::durable::DurableStream durable(dir, monitor_config(),
                                       /*epoch_days=*/30.0,
                                       /*retention_epochs=*/2, ingest,
                                       recovery_options);
  const auto& info = durable.recovery();
  std::printf("-- recovered %s: checkpoint %srestored, %zu WAL records "
              "replayed (%zu ratings), torn tail %s --\n",
              dir.c_str(), info.loaded_checkpoint ? "" : "NOT ",
              info.replayed_records, info.replayed_ratings,
              info.wal_tail_truncated ? "truncated" : "clean");
  std::printf("-- resuming at the exactly-once cursor: arrival %llu "
              "(client had %zu acknowledged) --\n\n",
              static_cast<unsigned long long>(durable.acknowledged()), acked);

  last_epoch = durable.stream().epochs_closed();
  ladder = durable.durability_state();
  while (durable.acknowledged() < arrivals.size()) {
    durable.submit(arrivals[durable.acknowledged()]);
    ladder = narrate_ladder(durable, ladder);
    if (durable.stream().epochs_closed() != last_epoch) {
      last_epoch = durable.stream().epochs_closed();
      std::printf("epoch %zu closed: %3zu raters below trust threshold, "
                  "aggregate %.3f (true quality 0.55)\n",
                  last_epoch, durable.stream().malicious().size(),
                  durable.stream().aggregate(1).value_or(-1.0));
      print_stats(durable.stream().ingest_stats());
    }
  }
  durable.flush();
  durable.checkpoint();
  if (inject_io_faults) {
    // Drain any backlog left at end-of-stream: keep probing like an
    // operator would until the fault bursts still in the plan burn out.
    for (int attempt = 0;
         attempt < 12 &&
         durable.durability_state() != core::durable::DurabilityState::kDurable;
         ++attempt) {
      durable.try_heal();
    }
    std::printf("-- I/O fault plan %s: %llu faults injected, ladder ended "
                "%s, %llu/%llu acknowledgements durable --\n",
                io_faults.exhausted() ? "exhausted (disk healed)"
                                      : "NOT exhausted",
                static_cast<unsigned long long>(io_faults.injected()),
                core::durable::to_string(durable.durability_state()),
                static_cast<unsigned long long>(durable.durable_acknowledged()),
                static_cast<unsigned long long>(durable.acknowledged()));
  }
  const core::StreamingRatingSystem& resumed = durable.stream();
  std::printf("final:          %3zu raters below trust threshold, "
              "aggregate %.3f\n",
              resumed.malicious().size(),
              resumed.aggregate(1).value_or(-1.0));
  print_stats(resumed.ingest_stats());
  if (!resumed.quarantine().empty()) {
    const auto& q = resumed.quarantine().back();
    std::printf("  newest dead-letter: %s rating at t=%.2f (%s)\n",
                core::to_string(q.reason), q.rating.time, q.detail.c_str());
  }
  std::printf("  epoch health: %zu/%zu degraded\n\n",
              resumed.degraded_epochs(), resumed.epoch_health().size());
  fs::remove_all(dir);

  // Telemetry dump: the deterministic counters (what happened), then the
  // audit trail's answer to "which evidence flagged whom".
  std::printf("telemetry (selected counters):\n");
  for (const char* name :
       {"trustrate_ingest_quarantined_total", "trustrate_ratings_filtered_total",
        "trustrate_suspicious_intervals_total", "trustrate_trust_demotions_total",
        "trustrate_wal_records_total", "trustrate_checkpoints_written_total",
        "trustrate_wal_torn_tail_truncations_total",
        "trustrate_recovery_replayed_records_total"}) {
    std::printf("  %-46s %llu\n", name,
                static_cast<unsigned long long>(metrics.counter(name).value()));
  }
  if (inject_io_faults) {
    for (const char* name :
         {"trustrate_durability_io_faults_total", "trustrate_io_retries_total",
          "trustrate_durability_degradations_total",
          "trustrate_durability_heals_total",
          "trustrate_durability_emergency_prunes_total"}) {
      std::printf("  %-46s %llu\n", name,
                  static_cast<unsigned long long>(
                      metrics.counter(name).value()));
    }
  }
  const auto demotions = audit.of_type(obs::AuditEventType::kTrustDemotion);
  std::printf("audit log: %llu events recorded; first shill demotion:\n",
              static_cast<unsigned long long>(audit.recorded()));
  for (const auto& e : demotions) {
    if (e.rater.has_value() && *e.rater >= 9000) {
      std::printf("  %s\n", obs::to_jsonl(e).c_str());
      break;
    }
  }

  // Who ended up distrusted? With a single product and ~4 ratings per
  // honest rater, campaign-window bystanders cannot rebuild trust the way
  // they do in the multi-product marketplace (fig07_fig08) — but the
  // shills sit at the very bottom and the aggregate stays on target.
  double shill_trust = 0.0;
  int shills = 0;
  double honest_trust = 0.0;
  int honest = 0;
  for (const auto& [id, rec] : resumed.system().trust_store().records()) {
    if (id >= 9000) {
      shill_trust += rec.trust();
      ++shills;
    } else {
      honest_trust += rec.trust();
      ++honest;
    }
  }
  std::printf("mean trust: shills %.3f (%d), honest raters %.3f (%d)\n\n",
              shill_trust / shills, shills, honest_trust / honest, honest);

  // Early-warning channel: arrival-rate anomalies, no trust needed.
  detect::RateDetectorConfig rate_cfg;
  rate_cfg.window_days = 3.0;
  rate_cfg.step_days = 1.5;
  const detect::RateAnomalyDetector rate_det(rate_cfg);
  const auto anomalies = rate_det.analyze(stream_data, 0.0, 120.0);
  std::printf("arrival-rate anomalies (baseline %.1f ratings/day):\n",
              anomalies.baseline_rate);
  for (const auto& w : anomalies.windows) {
    if (!w.anomalous) continue;
    std::printf("  days [%.1f, %.1f): %zu ratings (expected %.1f)\n",
                w.window.start, w.window.end, w.last - w.first, w.expected);
  }

  // --- third act: a fault INSIDE the engine itself ------------------------
  // The transport was hostile, then the disk; now a worker thread of the
  // sharded engine crashes or stalls mid-stream. Supervision (DESIGN.md
  // §15) contains it — poisons the shard or classifies the stall — and the
  // sharded durable stream heals: tears the engine down (close-aware, never
  // hangs), rebuilds from checkpoint + per-shard WAL, and retries. The
  // injected plan fires once, so the healed run completes with the same
  // numbers as an unfaulted one.
  if (inject_thread_faults) {
    testkit::ThreadFaultPlan plan =
        testkit::ThreadFaultPlan::generate(thread_fault_seed, 3);
    // This demo streams ONE product, so only its owning shard sees events;
    // retarget the plan there so the fault reliably fires. (The nightly
    // matrix streams many products and keeps the generated shard.)
    plan.shard = core::shard::shard_of(1, 3);
    testkit::ThreadFaultInjector thread_faults(plan);
    std::printf("\ninjecting a thread fault (seed %llu): %s\n",
                static_cast<unsigned long long>(thread_fault_seed),
                plan.summary().c_str());
    const fs::path shard_dir =
        fs::temp_directory_path() / "trustrate-streaming-monitor-shards";
    fs::remove_all(shard_dir);
    obs::MemoryAuditSink shard_audit;
    core::shard::ShardOptions shard_options;
    shard_options.shards = 3;
    shard_options.threaded = true;
    shard_options.supervision.stall_ticks = 1 << 12;  // impatient watchdog
    shard_options.event_hook = thread_faults.hook();
    core::durable::ShardedDurableOptions shard_stream_options;
    shard_stream_options.fsync = core::durable::FsyncPolicy::kNone;
    shard_stream_options.heal_attempts = 1;
    shard_stream_options.obs = {nullptr, nullptr, &shard_audit};
    core::durable::ShardedDurableStream sharded(
        shard_dir, monitor_config(), shard_options, /*epoch_days=*/30.0,
        /*retention_epochs=*/2, ingest, shard_stream_options);
    try {
      for (const Rating& r : arrivals) sharded.submit(r);
      sharded.flush();
      std::printf("-- supervised run finished: %zu heal(s), %zu fail-stop(s)"
                  "%s%s --\n",
                  sharded.supervision().heals, sharded.supervision().failstops,
                  sharded.supervision().heals > 0 ? "; last failure: " : "",
                  sharded.supervision().heals > 0
                      ? sharded.supervision().last_failure.c_str()
                      : "");
      std::printf("   sharded (3 shards, threaded): %3zu raters below trust "
                  "threshold, aggregate %.3f — same verdicts as the serial "
                  "run above\n",
                  sharded.system().malicious().size(),
                  sharded.system().aggregate(1).value_or(-1.0));
    } catch (const ShardFailure& failure) {
      // heal_attempts exhausted: the structured fail-stop an operator sees.
      std::printf("-- pipeline fail-stop: %s\n   diagnostic: %s --\n",
                  failure.what(), failure.diagnostic().c_str());
    }
    for (const auto& event : shard_audit.snapshot()) {
      switch (event.type) {
        case obs::AuditEventType::kShardPoisoned:
        case obs::AuditEventType::kShardStalled:
        case obs::AuditEventType::kPipelineFailstop:
        case obs::AuditEventType::kPipelineHealed:
          std::printf("   audit: %s\n", obs::to_jsonl(event).c_str());
          break;
        default:
          break;
      }
    }
    fs::remove_all(shard_dir);
  }

  // --- serving act: live introspection over the threaded engine -----------
  // Replay the whole stream through the threaded 3-shard engine with the
  // session's metrics registry attached, then stay alive as a scrape
  // target: /metrics, /healthz, /status on 127.0.0.1 until SIGINT/SIGTERM.
  if (serve) {
    core::shard::ShardOptions serve_options;
    serve_options.shards = 3;
    serve_options.threaded = true;
    core::shard::ShardedRatingSystem engine(monitor_config(), serve_options,
                                            /*epoch_days=*/30.0,
                                            /*retention_epochs=*/2, ingest);
    obs::Observability serve_obs;
    serve_obs.metrics = &metrics;
    serve_obs.audit = &audit;
    engine.set_observability(serve_obs);
    for (const Rating& r : arrivals) engine.submit(r);
    engine.flush();

    obs::HttpServerOptions http_options;
    http_options.port = serve_port;
    obs::ExpositionServer server(http_options);
    obs::bind_introspection(server, &metrics,
                            [&engine] { return engine.probe(); });
    if (!server.start()) {
      std::fprintf(stderr, "--serve failed: %s\n", server.error().c_str());
      return 1;
    }
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::printf("\nserving introspection on http://127.0.0.1:%u "
                "(/metrics /healthz /status) — Ctrl-C to exit\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    while (g_stop_serving == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
    std::printf("introspection server stopped after %llu request(s)\n",
                static_cast<unsigned long long>(server.requests_served()));
  }
  return 0;
}
