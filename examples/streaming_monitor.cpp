// Live-stream monitoring with a hostile transport: ingest a rating stream
// that arrives out of order, duplicated, and occasionally corrupted, watch
// the quarantine counters, survive a mid-stream crash via checkpoint/
// recovery, and keep a RateAnomalyDetector running alongside as an
// early-warning channel — the deployment shape of the paper's system.
//
//   build/examples/streaming_monitor
#include <cstdio>
#include <sstream>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/streaming.hpp"
#include "data/inject.hpp"
#include "detect/rate_detector.hpp"

using namespace trustrate;

namespace {

core::SystemConfig monitor_config() {
  core::SystemConfig config;
  config.filter.q = 0.02;
  config.ar.window_days = 8.0;
  config.ar.step_days = 2.0;
  config.ar.error_threshold = 0.024;
  config.b = 10.0;
  return config;
}

void print_stats(const core::IngestStats& s) {
  std::printf("  ingest: %zu submitted, %zu accepted (%zu reordered), "
              "%zu duplicates, %zu late, %zu malformed\n",
              s.submitted, s.accepted, s.reordered, s.duplicates,
              s.dropped_late, s.malformed);
}

}  // namespace

int main() {
  // Four months of a single product's stream; months 2 and 4 carry
  // collaborative campaigns from the same shill block.
  Rng rng(17);
  RatingSeries stream_data;
  for (int month = 0; month < 4; ++month) {
    const double t0 = month * 30.0;
    for (double t = t0 + rng.exponential(8.0); t < t0 + 30.0;
         t += rng.exponential(8.0)) {
      stream_data.push_back(
          {t, quantize_unit(clamp_unit(rng.gaussian(0.55, 0.25)), 10, false),
           static_cast<RaterId>(rng.uniform_int(0, 300)), 1,
           RatingLabel::kHonest});
    }
    if (month % 2 == 1) {  // campaign months
      RaterId shill = 9000;
      for (double t = t0 + 8.0 + rng.exponential(18.0); t < t0 + 18.0;
           t += rng.exponential(18.0)) {
        stream_data.push_back(
            {t, quantize_unit(clamp_unit(rng.gaussian(0.72, 0.02)), 10, false),
             shill++, 1, RatingLabel::kCollaborative2});
      }
    }
  }
  sort_by_time(stream_data);

  // The transport is hostile: 20% of arrivals delayed up to 2 days, 5%
  // duplicated by client retries, 2% corrupted in flight.
  data::FaultInjector faults({.delay_fraction = 0.2,
                              .max_delay_days = 2.0,
                              .duplicate_fraction = 0.05,
                              .corrupt_fraction = 0.02},
                             23);
  const RatingSeries arrivals = faults.corrupt(stream_data);

  // Lateness bound 2 days: the injected delays are fully repairable.
  const core::IngestConfig ingest{.max_lateness_days = 2.0};
  core::StreamingRatingSystem stream(monitor_config(), /*epoch_days=*/30.0,
                                     /*retention_epochs=*/2, ingest);

  std::printf("streaming %zu arrivals (%zu clean ratings) over 120 days "
              "(campaigns in months 2 & 4)\n\n",
              arrivals.size(), stream_data.size());

  // --- first half, then a simulated crash ---------------------------------
  const std::size_t crash_point = arrivals.size() / 2;
  std::size_t last_epoch = 0;
  for (std::size_t i = 0; i < crash_point; ++i) {
    stream.submit(arrivals[i]);
    if (stream.epochs_closed() != last_epoch) {
      last_epoch = stream.epochs_closed();
      std::printf("epoch %zu closed: %3zu raters below trust threshold, "
                  "aggregate %.3f (true quality 0.55)\n",
                  last_epoch, stream.malicious().size(),
                  stream.aggregate(1).value_or(-1.0));
      print_stats(stream.ingest_stats());
    }
  }

  // Operators checkpoint on a timer; here, right before the "crash".
  std::ostringstream checkpoint;
  core::save_checkpoint(stream, checkpoint);
  std::printf("\n-- crash at arrival %zu; checkpoint is %zu bytes --\n",
              crash_point, checkpoint.str().size());

  // --- restart: restore and resume where we left off ----------------------
  std::istringstream restore(checkpoint.str());
  auto resumed = core::load_checkpoint(restore, monitor_config());
  std::printf("-- restarted: %zu epochs closed, %zu ratings pending, "
              "%zu buffered --\n\n",
              resumed.epochs_closed(), resumed.pending_ratings(),
              resumed.buffered_ratings());

  for (std::size_t i = crash_point; i < arrivals.size(); ++i) {
    resumed.submit(arrivals[i]);
    if (resumed.epochs_closed() != last_epoch) {
      last_epoch = resumed.epochs_closed();
      std::printf("epoch %zu closed: %3zu raters below trust threshold, "
                  "aggregate %.3f (true quality 0.55)\n",
                  last_epoch, resumed.malicious().size(),
                  resumed.aggregate(1).value_or(-1.0));
      print_stats(resumed.ingest_stats());
    }
  }
  resumed.flush();
  std::printf("final:          %3zu raters below trust threshold, "
              "aggregate %.3f\n",
              resumed.malicious().size(),
              resumed.aggregate(1).value_or(-1.0));
  print_stats(resumed.ingest_stats());
  if (!resumed.quarantine().empty()) {
    const auto& q = resumed.quarantine().back();
    std::printf("  newest dead-letter: %s rating at t=%.2f (%s)\n",
                core::to_string(q.reason), q.rating.time, q.detail.c_str());
  }
  std::printf("  epoch health: %zu/%zu degraded\n\n",
              resumed.degraded_epochs(), resumed.epoch_health().size());

  // Who ended up distrusted? With a single product and ~4 ratings per
  // honest rater, campaign-window bystanders cannot rebuild trust the way
  // they do in the multi-product marketplace (fig07_fig08) — but the
  // shills sit at the very bottom and the aggregate stays on target.
  double shill_trust = 0.0;
  int shills = 0;
  double honest_trust = 0.0;
  int honest = 0;
  for (const auto& [id, rec] : resumed.system().trust_store().records()) {
    if (id >= 9000) {
      shill_trust += rec.trust();
      ++shills;
    } else {
      honest_trust += rec.trust();
      ++honest;
    }
  }
  std::printf("mean trust: shills %.3f (%d), honest raters %.3f (%d)\n\n",
              shill_trust / shills, shills, honest_trust / honest, honest);

  // Early-warning channel: arrival-rate anomalies, no trust needed.
  detect::RateDetectorConfig rate_cfg;
  rate_cfg.window_days = 3.0;
  rate_cfg.step_days = 1.5;
  const detect::RateAnomalyDetector rate_det(rate_cfg);
  const auto anomalies = rate_det.analyze(stream_data, 0.0, 120.0);
  std::printf("arrival-rate anomalies (baseline %.1f ratings/day):\n",
              anomalies.baseline_rate);
  for (const auto& w : anomalies.windows) {
    if (!w.anomalous) continue;
    std::printf("  days [%.1f, %.1f): %zu ratings (expected %.1f)\n",
                w.window.start, w.window.end, w.last - w.first, w.expected);
  }
  return 0;
}
