// Quickstart: detect a collaborative rating attack on one product and
// compute a trust-weighted aggregate — the library's core loop in ~60
// lines.
//
//   build/examples/quickstart
#include <cstdio>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/system.hpp"

using namespace trustrate;

int main() {
  Rng rng(1);

  // 1. A month of ratings for one product: 250 honest raters around the
  //    true quality 0.5, plus 60 colluders pushing 0.65 during days 10-20.
  core::ProductObservation product;
  product.product = 1;
  product.t_start = 0.0;
  product.t_end = 30.0;
  for (double t = rng.exponential(8.0); t < 30.0; t += rng.exponential(8.0)) {
    product.ratings.push_back(
        {t, quantize_unit(clamp_unit(rng.gaussian(0.5, 0.25)), 10, false),
         static_cast<RaterId>(rng.uniform_int(0, 249)), 1,
         RatingLabel::kHonest});
  }
  RaterId shill = 1000;
  for (double t = 10.0 + rng.exponential(14.0); t < 20.0;
       t += rng.exponential(14.0)) {
    product.ratings.push_back(
        {t, quantize_unit(clamp_unit(rng.gaussian(0.65, 0.02)), 10, false),
         shill++, 1, RatingLabel::kCollaborative2});
  }
  sort_by_time(product.ratings);

  // 2. Run the trust-enhanced rating system (Whitby beta filter + AR
  //    suspicion detector + Procedure-2 beta trust).
  core::SystemConfig config;
  config.filter.q = 0.02;
  config.ar.window_days = 8.0;
  config.ar.step_days = 2.0;
  config.ar.error_threshold = 0.024;
  config.b = 10.0;
  core::TrustEnhancedRatingSystem system(config);

  const core::EpochReport report =
      system.process_epoch(std::vector<core::ProductObservation>{product});

  // 3. Inspect what the detector saw.
  const auto& pr = report.products[0];
  std::printf("ratings: %zu (%zu filtered out)\n", product.ratings.size(),
              pr.filter_outcome.removed.size());
  std::printf("suspicious windows: %zu\n", pr.suspicion.suspicious_count());
  for (const auto& w : pr.suspicion.windows) {
    if (w.suspicious) {
      std::printf("  days [%.0f, %.0f): model error %.4f, level %.2f\n",
                  w.window.start, w.window.end, w.model_error, w.level);
    }
  }
  std::printf("collaborative ratings inside flagged windows: %.0f%%\n",
              100.0 * report.rating_metrics.detection_ratio());
  std::printf("(honest bystanders in those windows share the suspicion at\n"
              " first; repeated epochs separate them — see the marketplace\n"
              " example)\n");
  std::printf("raters now below the malicious threshold: %zu\n",
              system.malicious().size());

  // 4. Aggregate with and without trust weighting.
  std::printf("\naggregated rating (true quality 0.50):\n");
  std::printf("  simple average:            %.3f  <- boosted by the attack\n",
              system.aggregate_with(product.ratings,
                                    agg::AggregatorKind::kSimpleAverage));
  std::printf("  modified weighted average: %.3f  <- trust-protected\n",
              system.aggregate(product.ratings));
  return 0;
}
