// trustrate_cli — command-line front end for trace analysis, trust
// management, and aggregation. The deployment-shaped entry point: feed it
// rating traces in CSV form (time_days,rater_id,value_in_[0,1]) and it
// runs the paper's pipeline.
//
//   trustrate_cli analyze   <trace.csv> [options]   detect suspicious intervals
//   trustrate_cli trust     <trace.csv> [options]   run epochs, print/update trust
//   trustrate_cli aggregate <trace.csv> [options]   trust-weighted aggregate
//   trustrate_cli simulate  [options]               emit a marketplace trace
//
// Options:
//   --window D --step D --order P --threshold T     AR detector knobs
//   --epoch-days D                                  trust epoch length
//   --b W --forgetting L                            Procedure-2 knobs
//   --load FILE / --save FILE                       trust store persistence
//   --scheme simple|beta|weighted|trust-model       aggregation scheme
//   --months N --seed S                             simulate knobs
//   --metrics FILE                                  write Prometheus text
//                                                   exposition after the run
//                                                   (trust/aggregate)
//   --audit FILE                                    stream the detection
//                                                   audit log as JSONL
//                                                   (trust/aggregate)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "agg/aggregator.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/streaming.hpp"
#include "data/trace.hpp"
#include "obs/observability.hpp"
#include "sim/marketplace.hpp"
#include "trust/store_io.hpp"

using namespace trustrate;

namespace {

// Minimal --key value option parser.
class Options {
 public:
  Options(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        throw DataError("malformed option: " + key);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return parse_double_field(it->second, "option --" + key);
  }

  std::string text(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

data::RatingTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("cannot open trace file: " + path);
  return data::load_trace_csv(in, path);
}

agg::AggregatorKind scheme_of(const std::string& name) {
  if (name == "simple") return agg::AggregatorKind::kSimpleAverage;
  if (name == "beta") return agg::AggregatorKind::kBetaFunction;
  if (name == "weighted") return agg::AggregatorKind::kModifiedWeightedAverage;
  if (name == "trust-model") return agg::AggregatorKind::kOpinionTrustModel;
  throw DataError("unknown scheme: " + name);
}

/// --metrics / --audit telemetry for the pipeline-running commands. The
/// sinks live here; attach() hands the stream a bundle of pointers, and the
/// destructor-ordered members keep the audit stream open past the flush.
class CliTelemetry {
 public:
  CliTelemetry(const Options& opts)
      : metrics_path_(opts.text("metrics", "")),
        audit_path_(opts.text("audit", "")) {
    if (!audit_path_.empty()) {
      audit_out_.open(audit_path_);
      if (!audit_out_) {
        throw DataError("cannot write audit log: " + audit_path_);
      }
      audit_sink_.emplace(audit_out_);
    }
  }

  void attach(core::StreamingRatingSystem& stream) {
    obs::Observability o;
    if (!metrics_path_.empty()) o.metrics = &metrics_;
    if (audit_sink_.has_value()) o.audit = &*audit_sink_;
    if (o.enabled()) stream.set_observability(o);
  }

  /// Writes the Prometheus snapshot (call after flush()).
  void finish() {
    if (metrics_path_.empty()) return;
    std::ofstream out(metrics_path_);
    if (!out) throw DataError("cannot write metrics: " + metrics_path_);
    out << metrics_.prometheus();
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_path_.c_str());
  }

 private:
  std::string metrics_path_;
  std::string audit_path_;
  obs::MetricsRegistry metrics_;
  std::ofstream audit_out_;
  std::optional<obs::JsonlAuditSink> audit_sink_;
};

core::SystemConfig system_config(const Options& opts) {
  core::SystemConfig cfg;
  cfg.filter.q = opts.number("q", 0.02);
  cfg.ar.window_days = opts.number("window", 8.0);
  cfg.ar.step_days = opts.number("step", 2.0);
  cfg.ar.order = static_cast<int>(opts.number("order", 4.0));
  cfg.ar.error_threshold = opts.number("threshold", 0.024);
  cfg.b = opts.number("b", 10.0);
  cfg.forgetting = opts.number("forgetting", 0.95);
  cfg.aggregator = scheme_of(opts.text("scheme", "weighted"));
  return cfg;
}


int cmd_analyze(const std::string& path, const Options& opts) {
  const data::RatingTrace trace = load_trace(path);
  const core::SystemConfig cfg = system_config(opts);
  const detect::ArSuspicionDetector detector(cfg.ar);
  const double t0 = trace.ratings.empty() ? 0.0 : trace.ratings.front().time;
  const double t1 = trace.ratings.empty() ? 1.0 : trace.ratings.back().time + 1e-9;
  const auto result = detector.analyze(trace.ratings, t0, t1);

  std::printf("trace %s: %zu ratings over %.1f days\n", trace.name.c_str(),
              trace.ratings.size(), trace.duration());
  std::printf("window_start,window_end,n,model_error,suspicious,level\n");
  for (const auto& w : result.windows) {
    if (!w.evaluated) continue;
    std::printf("%.2f,%.2f,%zu,%.5f,%d,%.3f\n", w.window.start, w.window.end,
                w.last - w.first, w.model_error, w.suspicious ? 1 : 0, w.level);
  }
  std::printf("\n# raters with suspicion (top of C(i)):\n");
  std::printf("rater_id,suspicion\n");
  for (const auto& [rater, c] : result.suspicion) {
    std::printf("%u,%.3f\n", rater, c);
  }
  return 0;
}

int cmd_trust(const std::string& path, const Options& opts) {
  const data::RatingTrace trace = load_trace(path);
  core::StreamingRatingSystem stream(system_config(opts),
                                     opts.number("epoch-days", 30.0));
  CliTelemetry telemetry(opts);
  telemetry.attach(stream);
  // Optional warm start.
  const std::string load_path = opts.text("load", "");
  // (Streaming system owns its store; a warm start would need a setter —
  // print loaded values alongside instead.)
  trust::TrustStore prior;
  if (!load_path.empty()) {
    std::ifstream in(load_path);
    if (!in) throw DataError("cannot open trust store: " + load_path);
    prior = trust::load_store_csv(in);
    std::fprintf(stderr, "loaded %zu prior trust records (shown as 'prior')\n",
                 prior.size());
  }

  for (const Rating& r : trace.ratings) stream.submit(r);
  stream.flush();
  telemetry.finish();

  std::printf("rater_id,trust%s\n", prior.size() ? ",prior" : "");
  for (const auto& [id, record] : stream.system().trust_store().records()) {
    if (prior.size()) {
      std::printf("%u,%.4f,%.4f\n", id, record.trust(), prior.trust(id));
    } else {
      std::printf("%u,%.4f\n", id, record.trust());
    }
  }

  const std::string save_path = opts.text("save", "");
  if (!save_path.empty()) {
    std::ofstream out(save_path);
    if (!out) throw DataError("cannot write trust store: " + save_path);
    trust::save_store_csv(stream.system().trust_store(), out);
    std::fprintf(stderr, "saved trust store to %s\n", save_path.c_str());
  }
  return 0;
}

int cmd_aggregate(const std::string& path, const Options& opts) {
  const data::RatingTrace trace = load_trace(path);
  core::StreamingRatingSystem stream(system_config(opts),
                                     opts.number("epoch-days", 30.0),
                                     /*retention_epochs=*/1000000);
  CliTelemetry telemetry(opts);
  telemetry.attach(stream);
  for (const Rating& r : trace.ratings) stream.submit(r);
  stream.flush();
  telemetry.finish();
  // Aggregate each product seen in the trace.
  std::map<ProductId, bool> products;
  for (const Rating& r : trace.ratings) products[r.product] = true;
  std::printf("product,aggregate\n");
  for (const auto& [product, seen] : products) {
    const auto agg = stream.aggregate(product);
    if (agg) std::printf("%u,%.4f\n", product, *agg);
  }
  return 0;
}

int cmd_simulate(const Options& opts) {
  sim::MarketplaceConfig cfg;
  cfg.months = static_cast<int>(opts.number("months", 12.0));
  Rng rng(static_cast<std::uint64_t>(opts.number("seed", 20070615.0)));
  const auto market = simulate_marketplace(cfg, rng);
  // Emit the whole marketplace as one trace (time,rater,value) on stdout;
  // ground truth goes to stderr for scoring scripts.
  for (const auto& p : market.products) {
    for (const Rating& r : p.ratings) {
      std::printf("%.4f,%u,%.2f,%u\n", r.time, r.rater, r.value, p.id);
      if (is_unfair(r.label)) {
        std::fprintf(stderr, "unfair,%.4f,%u,%u\n", r.time, r.rater, p.id);
      }
    }
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: trustrate_cli <analyze|trust|aggregate> <trace.csv> "
               "[--key value ...]\n"
               "       trustrate_cli simulate [--months N --seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "simulate") {
      return cmd_simulate(Options(argc, argv, 2));
    }
    if (argc < 3) return usage();
    const std::string path = argv[2];
    const Options opts(argc, argv, 3);
    if (command == "analyze") return cmd_analyze(path, opts);
    if (command == "trust") return cmd_trust(path, opts);
    if (command == "aggregate") return cmd_aggregate(path, opts);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
