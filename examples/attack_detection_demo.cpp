// Attack-detection walkthrough on the paper's illustrative scenario
// (§III-A.2): generates honest + collaborative ratings, shows why the
// value histogram cannot separate them, and how the AR model error can.
//
//   build/examples/attack_detection_demo
#include <cstdio>

#include "common/rng.hpp"
#include "detect/ar_detector.hpp"
#include "detect/beta_filter.hpp"
#include "sim/illustrative.hpp"
#include "stats/histogram.hpp"

using namespace trustrate;

int main() {
  sim::IllustrativeConfig cfg;  // 60 days, quality 0.7->0.8, attack days 30-44
  Rng rng(7);
  const RatingSeries ratings = sim::generate_illustrative(cfg, rng);
  std::printf("generated %zu ratings (%zu collaborative) over %.0f days\n",
              ratings.size(), count_unfair(ratings), cfg.simu_time);

  // The histogram view: attack barely visible.
  stats::Histogram hist(0.0, 1.0, 11);
  for (const Rating& r : ratings) hist.add(r.value);
  std::printf("\nvalue histogram (the static view):\n");
  for (int i = 0; i < hist.bins(); ++i) {
    std::printf("  %.1f | ", hist.bin_center(i));
    const int bars = static_cast<int>(hist.frequency(i) * 120);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf("-> the collaborative mass hides inside the honest bulk.\n");

  // The temporal view: AR model error per window.
  detect::ArDetectorConfig det_cfg;
  det_cfg.count_based = true;
  det_cfg.window_count = 50;
  det_cfg.step_count = 10;
  det_cfg.error_threshold = 0.022;
  const detect::ArSuspicionDetector detector(det_cfg);
  const auto result = detector.analyze(ratings, 0.0, cfg.simu_time);

  std::printf("\nAR model error per 50-rating window (threshold %.3f):\n",
              det_cfg.error_threshold);
  for (const auto& w : result.windows) {
    if (!w.evaluated) continue;
    std::printf("  day %5.1f | err %.4f %s\n", w.window.center(), w.model_error,
                w.suspicious ? "<-- suspicious" : "");
  }

  std::printf("\nraters with accumulated suspicion: %zu\n",
              result.suspicion.size());
  std::printf("true attack interval: days %.0f-%.0f\n", cfg.attack_start,
              cfg.attack_end);
  return 0;
}
