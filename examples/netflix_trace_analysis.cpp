// Movie-trace analysis tool (the Fig. 5 pipeline as a utility).
//
// Without arguments it generates the synthetic Netflix-like trace, injects
// the paper's Dinosaur-Planet attack, and prints the model-error series.
// Given a CSV path (rows: time_days,rater_id,value_in_[0,1]) it analyzes a
// real trace instead — drop in a converted Netflix Prize file to run the
// paper's original experiment.
//
//   build/examples/netflix_trace_analysis [trace.csv]
#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/inject.hpp"
#include "data/netflix_like.hpp"
#include "data/trace.hpp"
#include "detect/ar_detector.hpp"

using namespace trustrate;

namespace {

void analyze(const data::RatingTrace& trace) {
  if (trace.ratings.size() < 120) {
    std::printf("trace '%s' has only %zu ratings; need >= 120\n",
                trace.name.c_str(), trace.ratings.size());
    return;
  }
  detect::ArDetectorConfig cfg;
  cfg.count_based = true;
  cfg.window_count = 100;
  cfg.step_count = 25;
  cfg.order = 4;
  cfg.error_threshold = 0.02;
  const detect::ArSuspicionDetector detector(cfg);
  const auto result = detector.analyze(trace.ratings, 0.0, 0.0);

  std::printf("trace '%s': %zu ratings over %.0f days\n", trace.name.c_str(),
              trace.ratings.size(), trace.duration());
  std::printf("%8s %10s %s\n", "day", "error", "flag");
  for (const auto& w : result.windows) {
    if (!w.evaluated) continue;
    std::printf("%8.1f %10.5f %s\n", w.window.center(), w.model_error,
                w.suspicious ? "suspicious" : "");
  }
  std::printf("suspicious windows: %zu, raters implicated: %zu\n\n",
              result.suspicious_count(), result.suspicion.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    try {
      analyze(data::load_trace_csv(in, argv[1]));
    } catch (const DataError& e) {
      std::printf("malformed trace: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  std::printf("no trace given; using the synthetic Netflix-like stand-in\n\n");
  data::NetflixLikeConfig cfg;
  Rng rng(20031218);
  const data::RatingTrace original = data::generate_netflix_like(cfg, rng);
  analyze(original);

  data::InjectionConfig inj;  // the paper's Dinosaur Planet attack
  Rng rng2(42);
  analyze(data::inject_collaborative(original, inj, rng2));
  return 0;
}
